//! Minimal complex arithmetic for the FFT.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number in Cartesian form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0)); // (1+2i)(3-i) = 3-i+6i+2 = 5+5i
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.abs(), 5.0);
        // z · conj(z) = |z|²
        let prod = a * a.conj();
        assert_eq!(prod, Complex::new(25.0, 0.0));
    }

    #[test]
    fn scaling() {
        assert_eq!(Complex::new(2.0, -4.0).scale(0.5), Complex::new(1.0, -2.0));
    }
}
