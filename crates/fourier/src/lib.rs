//! Fast Fourier transform used as the frequency-domain comparator in the
//! JWINS evaluation.
//!
//! Figure 2 of the paper compares sparsification in three domains — wavelet,
//! Fourier and the raw parameter domain — by the reconstruction error each
//! incurs at a 10% budget. This crate supplies the Fourier leg: an iterative
//! radix-2 FFT for power-of-two lengths and Bluestein's chirp-z algorithm for
//! everything else, so model vectors of arbitrary size transform without
//! padding artifacts.
//!
//! # Example
//!
//! ```
//! use jwins_fourier::{fft, ifft, Complex};
//!
//! let signal: Vec<Complex> = (0..12).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let spectrum = fft(&signal);
//! let recovered = ifft(&spectrum);
//! for (a, b) in signal.iter().zip(&recovered) {
//!     assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
//! }
//! ```

mod complex;

pub use complex::Complex;

use std::f64::consts::PI;

/// Forward DFT of an arbitrary-length complex signal.
///
/// Uses radix-2 when `len` is a power of two and Bluestein otherwise. The
/// transform is unnormalized (`ifft` applies the `1/n` factor).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, false);
    buf
}

/// Inverse DFT, normalized by `1/n` so `ifft(fft(x)) == x`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, true);
    let scale = 1.0 / buf.len().max(1) as f64;
    for v in &mut buf {
        *v = v.scale(scale);
    }
    buf
}

/// Forward DFT of a real `f32` signal (model parameters), returning the full
/// complex spectrum.
pub fn fft_real(signal: &[f32]) -> Vec<Complex> {
    let buf: Vec<Complex> = signal
        .iter()
        .map(|&v| Complex::new(f64::from(v), 0.0))
        .collect();
    fft(&buf)
}

/// Inverse of [`fft_real`]: recovers the real signal, discarding the
/// (numerically tiny) imaginary residue.
pub fn ifft_to_real(spectrum: &[Complex]) -> Vec<f32> {
    ifft(spectrum).iter().map(|c| c.re as f32).collect()
}

/// In-place transform dispatching on length.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(buf, inverse);
    } else {
        bluestein(buf, inverse);
    }
}

/// Iterative Cooley–Tukey for power-of-two lengths.
fn radix2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * PI / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let even = buf[start + k];
                let odd = buf[start + k + len / 2] * w;
                buf[start + k] = even + odd;
                buf[start + k + len / 2] = even - odd;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: expresses an arbitrary-length DFT as a convolution,
/// evaluated with a power-of-two FFT.
fn bluestein(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[k] = exp(sign * i * pi * k^2 / n). Using k^2 mod 2n keeps the
    // angle argument bounded for large k.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            let angle = sign * PI * k2 as f64 / n as f64;
            Complex::new(angle.cos(), angle.sin())
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = buf[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    // b must be circularly symmetric: b[m - k] = b[k].
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    radix2(&mut a, false);
    radix2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    radix2(&mut a, true);
    let scale = 1.0 / m as f64;
    for k in 0..n {
        buf[k] = (a[k] * chirp[k]).scale(scale);
    }
}

/// Naive O(n²) DFT used as the test oracle.
#[doc(hidden)]
pub fn dft_naive(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = sign * 2.0 * PI * (k * j) as f64 / n as f64;
                acc = acc + x * Complex::new(angle.cos(), angle.sin());
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    fn random_signal(n: usize, mut seed: u64) -> Vec<Complex> {
        seed |= 1;
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let re = ((seed >> 16) as f64 / (1u64 << 48) as f64) * 2.0 - 1.0;
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let im = ((seed >> 16) as f64 / (1u64 << 48) as f64) * 2.0 - 1.0;
                Complex::new(re, im)
            })
            .collect()
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        let spec = fft(&x);
        for c in &spec {
            assert!(close(*c, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let x = vec![Complex::new(2.0, 0.0); 16];
        let spec = fft(&x);
        assert!(close(spec[0], Complex::new(32.0, 0.0), 1e-9));
        for c in &spec[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for n in [2usize, 4, 8, 16, 64] {
            let x = random_signal(n, 42 + n as u64);
            let fast = fft(&x);
            let slow = dft_naive(&x, false);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(close(*a, *b, 1e-8), "n={n}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 9, 12, 17, 30, 97, 100] {
            let x = random_signal(n, 7 + n as u64);
            let fast = fft(&x);
            let slow = dft_naive(&x, false);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(close(*a, *b, 1e-7), "n={n} bin {i}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn real_wrapper_roundtrip() {
        let signal: Vec<f32> = (0..123).map(|i| (i as f32 * 0.17).cos()).collect();
        let spec = fft_real(&signal);
        let back = ifft_to_real(&spec);
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parseval_holds() {
        for n in [16usize, 21, 100] {
            let x = random_signal(n, 99);
            let spec = fft(&x);
            let ex: f64 = x.iter().map(|c| c.norm_sq()).sum();
            let es: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
            assert!((ex - es).abs() < 1e-8 * ex.max(1.0), "n={n}: {ex} vs {es}");
        }
    }

    #[test]
    fn linearity() {
        let x = random_signal(20, 1);
        let y = random_signal(20, 2);
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for i in 0..20 {
            assert!(close(fsum[i], fx[i] + fy[i], 1e-9));
        }
    }

    #[test]
    fn tiny_inputs() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(3.0, -1.0)]);
        assert!(close(one[0], Complex::new(3.0, -1.0), 1e-12));
    }

    proptest! {
        #[test]
        fn roundtrip_any_length(n in 1usize..300, seed in any::<u64>()) {
            let x = random_signal(n, seed);
            let back = ifft(&fft(&x));
            for (a, b) in x.iter().zip(&back) {
                prop_assert!(close(*a, *b, 1e-7));
            }
        }
    }
}
