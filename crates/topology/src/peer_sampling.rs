//! Gossip-based peer sampling (extension).
//!
//! The paper closes its related-work discussion with: "JWINS does not assume
//! anything about the topology of the nodes, therefore can be combined with
//! peer-sampling and selection services. This is an interesting avenue for
//! future research" (§V). This module explores that avenue with a
//! Cyclon-style peer-sampling service: every node maintains a small partial
//! *view* of the network and periodically shuffles view entries with its
//! oldest peer. Each round's communication graph is sampled from the current
//! views, so the topology both changes every round (like Figure 7's dynamic
//! graphs) and emerges from a realistic membership protocol rather than a
//! global random-regular construction no real deployment could build.
//!
//! Simplifications relative to the full Cyclon protocol, which do not affect
//! the properties the experiments rely on (uniform-ish sampling, self-healing
//! views, bounded degree): shuffles happen synchronously once per round in
//! node order, and the "network" delivering shuffle requests is the
//! simulator itself.

use crate::dynamic::{RoundTopology, TopologyProvider};
use crate::repair::LiveSet;
use crate::Graph;
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A view entry: a known peer and how many shuffle rounds ago it was
/// inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    peer: usize,
    age: u32,
}

/// Configuration of the peer-sampling service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSamplingConfig {
    /// Partial-view size per node (Cyclon's cache size).
    pub view_size: usize,
    /// Entries exchanged per shuffle (Cyclon's shuffle length).
    pub shuffle_len: usize,
    /// Gossip targets drawn from the view each round (out-degree before
    /// symmetrization).
    pub degree: usize,
}

impl Default for PeerSamplingConfig {
    fn default() -> Self {
        Self {
            view_size: 8,
            shuffle_len: 4,
            degree: 2,
        }
    }
}

/// Mutable protocol state, evolved one shuffle per round.
#[derive(Debug)]
struct CyclonState {
    /// Round whose *pre-shuffle* views the `views` field currently holds:
    /// round `r`'s graph is derived from these views, and shuffling them
    /// with round `r`'s stream advances to `r + 1`.
    view_round: usize,
    views: Vec<Vec<Entry>>,
    /// Pre-shuffle view snapshots of the last [`HISTORY_CAP`] rounds
    /// stepped through, newest at the back. Re-querying a recent earlier
    /// round (the engine's repair path re-resolves every in-progress round
    /// on each crash/rejoin) restores from here in O(n · view_size)
    /// instead of replaying the whole protocol from bootstrap.
    history: std::collections::VecDeque<(usize, Vec<Vec<Entry>>)>,
    /// Most recently derived topology, keyed by round.
    cache: Option<(usize, RoundTopology)>,
}

/// Rounds of pre-shuffle view snapshots kept for cheap rewinds. The engine
/// only revisits rounds still in progress — a window bounded by the
/// fast/slow node spread, far below this cap.
const HISTORY_CAP: usize = 32;

/// A [`TopologyProvider`] backed by a Cyclon-style peer-sampling service.
///
/// Deterministic in `(seed, round)`: querying rounds out of order replays
/// the protocol from its bootstrap state, so repeated queries for the same
/// round always return the same graph.
///
/// # Example
///
/// ```
/// use jwins_topology::peer_sampling::{PeerSampling, PeerSamplingConfig};
/// use jwins_topology::dynamic::TopologyProvider;
///
/// let provider = PeerSampling::new(32, PeerSamplingConfig::default(), 7);
/// let t0 = provider.topology(0);
/// let t5 = provider.topology(5);
/// assert_ne!(
///     t0.graph.neighbors(0),
///     t5.graph.neighbors(0),
///     "views shuffle, so neighbourhoods drift"
/// );
/// ```
#[derive(Debug)]
pub struct PeerSampling {
    nodes: usize,
    config: PeerSamplingConfig,
    seed: u64,
    state: Mutex<CyclonState>,
}

impl PeerSampling {
    /// Creates a service over `nodes` nodes.
    ///
    /// Nodes bootstrap with a chain-of-successors view (node `i` knows
    /// `i+1 .. i+view_size`), mimicking deployments where joiners learn a few
    /// contacts from the node that introduced them.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, `view_size == 0`, `degree == 0`, or
    /// `shuffle_len == 0`.
    pub fn new(nodes: usize, config: PeerSamplingConfig, seed: u64) -> Self {
        assert!(nodes >= 2, "peer sampling needs at least two nodes");
        assert!(config.view_size > 0, "view_size must be positive");
        assert!(config.degree > 0, "degree must be positive");
        assert!(config.shuffle_len > 0, "shuffle_len must be positive");
        Self {
            nodes,
            config,
            seed,
            state: Mutex::new(CyclonState {
                view_round: 0,
                views: Self::bootstrap(nodes, config.view_size),
                history: std::collections::VecDeque::new(),
                cache: None,
            }),
        }
    }

    fn bootstrap(nodes: usize, view_size: usize) -> Vec<Vec<Entry>> {
        (0..nodes)
            .map(|i| {
                (1..=view_size.min(nodes - 1))
                    .map(|k| Entry {
                        peer: (i + k) % nodes,
                        age: 0,
                    })
                    .collect()
            })
            .collect()
    }

    /// The configuration in use.
    pub fn config(&self) -> PeerSamplingConfig {
        self.config
    }

    /// A snapshot of node `v`'s current partial view (diagnostics/tests).
    /// Reflects the views the most recently queried round's graph was
    /// derived from.
    ///
    /// # Panics
    ///
    /// Panics if `v >= nodes`.
    pub fn view_of(&self, v: usize) -> Vec<usize> {
        let state = self.state.lock();
        state.views[v].iter().map(|e| e.peer).collect()
    }

    /// [`Self::view_of`] restricted to peers that are up in `live`: the
    /// contacts a node could actually gossip with. A caller holding a
    /// lifecycle tracker should prefer this over [`Self::view_of`] — the
    /// raw view may still list crashed peers, since view maintenance (like
    /// any real membership protocol) only learns about failures with lag.
    /// The engine's repair path resolves topologies through
    /// [`TopologyProvider::topology_for`], which samples from exactly this
    /// filtered view.
    ///
    /// # Panics
    ///
    /// Panics if `v >= nodes` or the live set size mismatches.
    pub fn view_of_live(&self, v: usize, live: &LiveSet) -> Vec<usize> {
        assert_eq!(live.len(), self.nodes, "live set size mismatches service");
        let state = self.state.lock();
        state.views[v]
            .iter()
            .map(|e| e.peer)
            .filter(|&p| live.is_alive(p))
            .collect()
    }

    fn rng_for(&self, round: usize, salt: u64) -> ChaCha8Rng {
        // SplitMix64 over (seed, round, salt) for decorrelated streams.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1))
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
    }

    /// Derives this round's communication graph from the current views:
    /// every node picks `degree` distinct peers from its view; the edge set
    /// is symmetrized. With a live set, dead nodes neither pick peers nor
    /// get picked (their view entries are filtered out before the draw,
    /// like [`Self::view_of_live`]) but stay in the vertex set, isolated,
    /// so node ids remain stable. `None` takes the unfiltered path — one
    /// draw loop for both, so the live and plain graphs can never drift
    /// apart structurally.
    fn derive_graph(&self, views: &[Vec<Entry>], round: usize, live: Option<&LiveSet>) -> Graph {
        let mut rng = self.rng_for(round, 0xE);
        let mut edges = Vec::with_capacity(self.nodes * self.config.degree);
        for (i, view) in views.iter().enumerate() {
            if live.is_some_and(|l| !l.is_alive(i)) {
                continue;
            }
            let mut peers: Vec<usize> = view
                .iter()
                .map(|e| e.peer)
                .filter(|&p| live.is_none_or(|l| l.is_alive(p)))
                .collect();
            peers.shuffle(&mut rng);
            for &p in peers.iter().take(self.config.degree) {
                edges.push((i, p));
            }
        }
        Graph::from_edges(self.nodes, &edges).expect("views contain only valid, non-self peers")
    }

    /// One synchronous Cyclon shuffle across all nodes.
    fn shuffle_step(&self, views: &mut [Vec<Entry>], round: usize) {
        let mut rng = self.rng_for(round, 0x5);
        for i in 0..views.len() {
            for e in views[i].iter_mut() {
                e.age += 1;
            }
            // Pick the oldest peer as the shuffle partner and drop it from
            // the view (it is replaced by the partner's fresh entries).
            let Some(oldest_pos) = views[i]
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.age)
                .map(|(pos, _)| pos)
            else {
                continue;
            };
            let partner = views[i].remove(oldest_pos).peer;
            // Request: up to shuffle_len−1 random entries plus our own
            // descriptor with age 0.
            let mut request: Vec<Entry> = {
                let mut pool: Vec<Entry> = views[i].clone();
                pool.shuffle(&mut rng);
                pool.truncate(self.config.shuffle_len.saturating_sub(1));
                pool
            };
            request.push(Entry { peer: i, age: 0 });
            // Reply: up to shuffle_len random entries from the partner.
            let reply: Vec<Entry> = {
                let mut pool: Vec<Entry> = views[partner].clone();
                pool.shuffle(&mut rng);
                pool.truncate(self.config.shuffle_len);
                pool
            };
            let sent_by_partner: Vec<usize> = reply.iter().map(|e| e.peer).collect();
            let sent_by_i: Vec<usize> = request.iter().map(|e| e.peer).collect();
            Self::merge(&mut views[i], i, &reply, &sent_by_i, self.config.view_size);
            Self::merge(
                &mut views[partner],
                partner,
                &request,
                &sent_by_partner,
                self.config.view_size,
            );
        }
    }

    /// Cyclon merge: insert received entries (skipping self and known
    /// peers), evicting first the entries that were sent away, then the
    /// oldest, to stay within `cap`.
    fn merge(view: &mut Vec<Entry>, owner: usize, received: &[Entry], sent: &[usize], cap: usize) {
        for &entry in received {
            if entry.peer == owner || view.iter().any(|e| e.peer == entry.peer) {
                continue;
            }
            if view.len() >= cap {
                // Prefer evicting an entry we just offered to the partner.
                let victim = view
                    .iter()
                    .position(|e| sent.contains(&e.peer))
                    .or_else(|| {
                        view.iter()
                            .enumerate()
                            .max_by_key(|(_, e)| e.age)
                            .map(|(pos, _)| pos)
                    });
                match victim {
                    Some(pos) => {
                        view.remove(pos);
                    }
                    None => break,
                }
            }
            view.push(entry);
        }
    }

    /// Advances so `state.views` holds the pre-shuffle views round
    /// `round`'s graph is derived from. Rewinds restore from the snapshot
    /// history when the round is recent (the repair path's common case),
    /// and replay from bootstrap otherwise — both roads reach the exact
    /// same deterministic state.
    fn advance_to(&self, state: &mut CyclonState, round: usize) {
        if round < state.view_round {
            if let Some((_, views)) = state.history.iter().find(|(r, _)| *r == round) {
                state.views = views.clone();
                state.view_round = round;
            } else {
                state.views = Self::bootstrap(self.nodes, self.config.view_size);
                state.view_round = 0;
                state.cache = None;
            }
        }
        while state.view_round < round {
            let r = state.view_round;
            // Snapshot the pre-shuffle views of the round we step past
            // (skip if a rewind already stored this round).
            if !state.history.iter().any(|(h, _)| *h == r) {
                state.history.push_back((r, state.views.clone()));
                while state.history.len() > HISTORY_CAP {
                    state.history.pop_front();
                }
            }
            self.shuffle_step(&mut state.views, r);
            state.view_round = r + 1;
        }
    }

    /// Advances the protocol to `round` and returns that round's topology,
    /// replaying from bootstrap if an earlier round is requested.
    fn topology_at(&self, round: usize) -> RoundTopology {
        let mut state = self.state.lock();
        if let Some((r, topo)) = &state.cache {
            if *r == round {
                return topo.clone();
            }
        }
        self.advance_to(&mut state, round);
        let topo = RoundTopology::new(self.derive_graph(&state.views, round, None));
        state.cache = Some((round, topo.clone()));
        topo
    }
}

impl TopologyProvider for PeerSampling {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn topology(&self, round: usize) -> RoundTopology {
        self.topology_at(round)
    }

    /// Live-peer sampling: the round's graph is drawn from the same views
    /// as [`Self::topology`], but crashed peers are filtered out of every
    /// view before the draw, so a dead node can never be sampled as a
    /// gossip target. With a fully-alive set this takes the exact
    /// [`Self::topology`] path (same cache, same bits).
    fn topology_for(&self, round: usize, live: &LiveSet) -> RoundTopology {
        if live.is_fully_alive() {
            return self.topology_at(round);
        }
        assert_eq!(live.len(), self.nodes, "live set size mismatches service");
        let mut state = self.state.lock();
        self.advance_to(&mut state, round);
        RoundTopology::new(self.derive_graph(&state.views, round, Some(live)))
    }

    fn is_live_aware(&self) -> bool {
        true
    }

    fn is_dynamic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider(n: usize, seed: u64) -> PeerSampling {
        PeerSampling::new(n, PeerSamplingConfig::default(), seed)
    }

    #[test]
    fn every_round_has_no_isolated_nodes() {
        let p = provider(24, 3);
        for round in 0..30 {
            let topo = p.topology(round);
            for v in 0..24 {
                assert!(
                    topo.graph.degree(v) >= 1,
                    "node {v} isolated in round {round}"
                );
            }
        }
    }

    #[test]
    fn views_stay_valid_under_shuffling() {
        let p = provider(16, 11);
        let _ = p.topology(40);
        for v in 0..16 {
            let view = p.view_of(v);
            assert!(view.len() <= p.config().view_size);
            assert!(!view.contains(&v), "self in view of {v}");
            let mut sorted = view.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), view.len(), "duplicate peers in view of {v}");
        }
    }

    #[test]
    fn deterministic_and_replayable() {
        let p1 = provider(20, 9);
        let p2 = provider(20, 9);
        let a = p1.topology(7);
        let b = p2.topology(7);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        // Out-of-order query replays deterministically.
        let _ = p1.topology(2);
        let again = p1.topology(7);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            again.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = provider(20, 1).topology(5);
        let b = provider(20, 2).topology(5);
        assert_ne!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn topology_drifts_over_rounds() {
        let p = provider(32, 5);
        let early = p.topology(0);
        let late = p.topology(25);
        let e0: std::collections::HashSet<_> = early.graph.edges().collect();
        let e25: std::collections::HashSet<_> = late.graph.edges().collect();
        assert_ne!(e0, e25, "shuffling must change the sampled graph");
    }

    #[test]
    fn views_mix_beyond_bootstrap_neighbourhood() {
        // Bootstrap views are successor chains; after enough shuffles a
        // node's view should include peers far outside its initial window.
        let p = provider(64, 21);
        let _ = p.topology(60);
        let mut far = 0;
        for v in 0..64 {
            for peer in p.view_of(v) {
                let dist = (peer + 64 - v) % 64;
                if !(1..=p.config().view_size).contains(&dist) {
                    far += 1;
                }
            }
        }
        assert!(far > 64, "views never mixed: only {far} far entries");
    }

    #[test]
    fn union_over_rounds_is_connected() {
        let p = provider(24, 13);
        let mut edges = Vec::new();
        for round in 0..10 {
            edges.extend(p.topology(round).graph.edges());
        }
        let union = Graph::from_edges(24, &edges).unwrap();
        assert!(union.is_connected());
    }

    #[test]
    fn load_spreads_across_nodes() {
        // No node should be referenced dramatically more often than average
        // across many rounds (peer-sampling's load-balancing property).
        let p = provider(32, 17);
        let mut refs = vec![0usize; 32];
        for round in 0..40 {
            let topo = p.topology(round);
            for (v, count) in refs.iter_mut().enumerate() {
                *count += topo.graph.degree(v);
            }
        }
        let mean = refs.iter().sum::<usize>() as f64 / 32.0;
        let max = *refs.iter().max().unwrap() as f64;
        assert!(
            max < mean * 3.0,
            "hot spot: max degree-sum {max} vs mean {mean}"
        );
    }

    #[test]
    fn live_views_filter_dead_peers() {
        let p = provider(16, 7);
        let _ = p.topology(10);
        let mut alive = vec![true; 16];
        alive[2] = false;
        alive[9] = false;
        let live = LiveSet::new(alive, 2);
        for v in 0..16 {
            let filtered = p.view_of_live(v, &live);
            assert!(!filtered.contains(&2) && !filtered.contains(&9));
            let raw = p.view_of(v);
            assert!(filtered.len() <= raw.len());
            for peer in &filtered {
                assert!(raw.contains(peer), "filtered view invented a peer");
            }
        }
    }

    #[test]
    fn live_topology_never_samples_dead_nodes() {
        let p = provider(24, 13);
        let mut alive = vec![true; 24];
        for v in [1, 6, 17] {
            alive[v] = false;
        }
        let live = LiveSet::new(alive, 3);
        for round in 0..15 {
            let topo = p.topology_for(round, &live);
            for (a, b) in topo.graph.edges() {
                assert!(
                    live.is_alive(a) && live.is_alive(b),
                    "round {round}: edge ({a},{b}) touches a dead node"
                );
            }
            assert_eq!(topo.graph.degree(1), 0);
        }
        // Deterministic in (round, live).
        let a = p.topology_for(4, &live);
        let b = p.topology_for(4, &live);
        assert_eq!(*a.graph, *b.graph);
    }

    #[test]
    fn recent_rewinds_restore_from_history_identically() {
        // The repair path re-queries slightly older rounds after serving
        // newer ones; the snapshot history must hand back the exact same
        // graphs as a fresh replay — both for recent rounds (restored) and
        // for rounds far beyond the history window (bootstrap replay).
        let p = provider(16, 23);
        let fresh = provider(16, 23);
        let _ = p.topology(40);
        for round in [38, 35, 40, 12, 39, 0] {
            let rewound = p.topology(round);
            let replayed = fresh.topology(round);
            assert_eq!(*rewound.graph, *replayed.graph, "round {round}");
        }
        // Live queries across rewinds stay deterministic too.
        let mut alive = vec![true; 16];
        alive[4] = false;
        let live = LiveSet::new(alive, 1);
        let a = p.topology_for(37, &live);
        let _ = p.topology(40);
        let b = p.topology_for(37, &live);
        assert_eq!(*a.graph, *b.graph);
    }

    #[test]
    fn fully_alive_live_path_matches_plain_topology() {
        let p = provider(20, 3);
        let live = LiveSet::all_alive(20);
        for round in [0, 3, 7] {
            let plain = p.topology(round);
            let via_live = p.topology_for(round, &live);
            assert_eq!(*plain.graph, *via_live.graph);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_rejected() {
        let _ = PeerSampling::new(1, PeerSamplingConfig::default(), 0);
    }

    #[test]
    fn works_with_tiny_views() {
        let p = PeerSampling::new(
            8,
            PeerSamplingConfig {
                view_size: 2,
                shuffle_len: 1,
                degree: 1,
            },
            3,
        );
        for round in 0..20 {
            let topo = p.topology(round);
            assert_eq!(topo.graph.len(), 8);
        }
    }
}
