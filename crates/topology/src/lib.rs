//! Communication topologies for decentralized learning.
//!
//! The JWINS evaluation connects its 96–384 nodes in random `d`-regular
//! graphs (d = 4 for 96 nodes, 5 for 192/288, 6 for 384 — paper §IV-B/F) and
//! aggregates with Metropolis–Hastings weights (Xiao & Boyd). Figure 7
//! additionally re-randomizes the neighbourhood every round ("dynamic
//! topology"), which improves mixing for full-sharing and JWINS but breaks
//! CHOCO-SGD's error-feedback state.
//!
//! - [`Graph`]: simple undirected graph with validated invariants.
//! - [`gen`]: generators — random regular, ring, full, star, torus.
//! - [`weights`]: Metropolis–Hastings doubly stochastic mixing matrices.
//! - [`dynamic`]: static and per-round re-randomized topology providers.
//! - [`peer_sampling`]: Cyclon-style partial-view peer sampling (the
//!   "peer-sampling services" future-work direction of §V).
//! - [`repair`]: liveness-aware topology repair — deterministic, seeded
//!   re-wiring of survivors around crashed nodes ([`repair::RepairPolicy`]).
//!
//! # Example
//!
//! ```
//! use jwins_topology::{gen, weights::MetropolisWeights};
//!
//! # fn main() -> Result<(), jwins_topology::TopologyError> {
//! let graph = gen::random_regular(96, 4, 7)?;
//! assert!(graph.is_connected());
//! let w = MetropolisWeights::for_graph(&graph);
//! assert!((w.self_weight(0) + w.neighbor_weights(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod dynamic;
pub mod gen;
pub mod peer_sampling;
pub mod repair;
pub mod weights;

pub use repair::{LiveSet, RepairPolicy};

use std::error::Error;
use std::fmt;

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// `n * d` must be even and `d < n` for a `d`-regular graph to exist.
    InfeasibleRegular {
        /// Number of vertices requested.
        nodes: usize,
        /// Degree requested.
        degree: usize,
    },
    /// The pairing model failed to produce a simple connected graph after
    /// the attempt budget (astronomically unlikely for sane `n`, `d`).
    GenerationFailed,
    /// An edge references a vertex outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        nodes: usize,
    },
    /// Self-loops are not allowed.
    SelfLoop(usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InfeasibleRegular { nodes, degree } => {
                write!(f, "no {degree}-regular graph on {nodes} vertices exists")
            }
            TopologyError::GenerationFailed => {
                write!(f, "failed to generate a simple connected regular graph")
            }
            TopologyError::VertexOutOfRange { vertex, nodes } => {
                write!(f, "vertex {vertex} out of range for {nodes}-vertex graph")
            }
            TopologyError::SelfLoop(v) => write!(f, "self-loop at vertex {v}"),
        }
    }
}

impl Error for TopologyError {}

/// A simple undirected graph: no self-loops, no parallel edges, symmetric
/// adjacency. Vertices are `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Duplicate edges are
    /// collapsed.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range vertices and self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, TopologyError> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(TopologyError::VertexOutOfRange {
                    vertex: a,
                    nodes: n,
                });
            }
            if b >= n {
                return Err(TopologyError::VertexOutOfRange {
                    vertex: b,
                    nodes: n,
                });
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Ok(Self { adj })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether the undirected edge `{a, b}` exists.
    ///
    /// # Panics
    ///
    /// Panics if `a >= self.len()`.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// Iterates over each undirected edge once, as `(low, high)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, list)| list.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// Whether every vertex can reach every other (BFS). Empty and
    /// single-vertex graphs count as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &u in &self.adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == n
    }

    /// Whether every vertex with `include[v] == true` can reach every other
    /// included vertex through included vertices only — connectivity of the
    /// induced subgraph. Zero or one included vertices count as connected.
    /// Used by the repair layer, where crashed nodes sit isolated in the
    /// full graph but must not count against survivor connectivity.
    ///
    /// # Panics
    ///
    /// Panics if `include.len() != self.len()`.
    pub fn is_connected_among(&self, include: &[bool]) -> bool {
        assert_eq!(include.len(), self.len(), "include mask length mismatch");
        let total = include.iter().filter(|&&k| k).count();
        if total <= 1 {
            return true;
        }
        let start = include.iter().position(|&k| k).expect("total >= 1");
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &u in &self.adj[v] {
                if include[u] && !seen[u] {
                    seen[u] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert!(g.is_connected());
    }

    #[test]
    fn duplicates_collapse() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn invalid_edges_rejected() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(TopologyError::VertexOutOfRange {
                vertex: 2,
                nodes: 2
            })
        );
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(TopologyError::SelfLoop(1))
        );
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn edge_iterator_visits_each_once() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn has_edge_checks_membership() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn induced_connectivity_ignores_excluded_vertices() {
        // 0-1-2 path plus isolated 3: full graph disconnected, but the
        // subgraph without 3 is connected.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        assert!(!g.is_connected());
        assert!(g.is_connected_among(&[true, true, true, false]));
        // Excluding the middle of the path disconnects the ends.
        assert!(!g.is_connected_among(&[true, false, true, false]));
        // Degenerate masks are connected.
        assert!(g.is_connected_among(&[false, false, false, true]));
        assert!(g.is_connected_among(&[false; 4]));
    }

    #[test]
    fn trivial_graphs_connected() {
        assert!(Graph::from_edges(0, &[]).unwrap().is_connected());
        assert!(Graph::from_edges(1, &[]).unwrap().is_connected());
        assert!(!Graph::from_edges(2, &[]).unwrap().is_connected());
    }
}
