//! Fault-aware topology repair: deterministic re-wiring of survivors around
//! crashed nodes.
//!
//! The paper measures its bandwidth savings on fixed communication graphs;
//! under churn that idealization leaks bandwidth, because a crashed node's
//! neighbours keep addressing it until it rejoins. Gossip peer-sampling
//! systems instead *repair* the overlay: survivors replace their dead
//! contacts with live ones, keeping degree (and with it the mixing spectral
//! gap) healthy. This module implements that repair as a pure, seeded
//! function so a faulty run stays exactly as reproducible as a healthy one:
//!
//! - [`LiveSet`]: a snapshot of which nodes are up, tagged with a lifecycle
//!   *version* (see `jwins_sim::LifecycleTracker::version`) that keys the
//!   deterministic re-wiring randomness — the same crash history always
//!   repairs the same way.
//! - [`RepairPolicy`]: `None` (today's behaviour, bit for bit),
//!   `DegreePreserving` (pair up the half-edges orphaned by dead nodes so
//!   every survivor keeps its degree), or `PeerSamplingResample` (survivors
//!   draw fresh live peers uniformly, as a peer-sampling service would hand
//!   them out).
//! - [`RepairPolicy::apply`]: base graph + live set → repaired
//!   [`RoundTopology`] with freshly computed Metropolis–Hastings weights,
//!   plus the accounting ([`RepairOutcome`]) the engine folds into its
//!   `edges_rewired` / `bandwidth_saved_bytes` metrics.
//!
//! Both non-trivial policies finish with a connectivity pass: if removing
//! the dead nodes (or an unlucky re-wiring) splits the survivors, the
//! components are chained back together through their lowest-degree
//! members. Degree guarantee for `DegreePreserving`: every survivor ends
//! with at most its original degree + 2 (the pairing itself never exceeds
//! the original degree; the connectivity chain can add up to two bridge
//! edges per node).
//!
//! # Example
//!
//! ```
//! use jwins_topology::repair::{LiveSet, RepairPolicy};
//! use jwins_topology::dynamic::RoundTopology;
//! use jwins_topology::gen;
//!
//! let base = RoundTopology::new(gen::random_regular(16, 4, 7).unwrap());
//! let mut alive = vec![true; 16];
//! alive[3] = false;
//! alive[11] = false;
//! let live = LiveSet::new(alive, 2);
//! let out = RepairPolicy::DegreePreserving.apply(&base, &live, 42, 0);
//! assert!(out.topology.graph.is_connected_among(live.alive_flags()));
//! assert_eq!(out.topology.graph.degree(3), 0, "dead nodes are isolated");
//! ```

use crate::dynamic::RoundTopology;
use crate::Graph;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A snapshot of node liveness, versioned so repair derivations can be
/// keyed deterministically by crash history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveSet {
    alive: Vec<bool>,
    version: u64,
    live_count: usize,
}

impl LiveSet {
    /// Wraps per-node alive flags with a lifecycle version (a monotone
    /// counter that changes on every crash and recovery).
    pub fn new(alive: Vec<bool>, version: u64) -> Self {
        let live_count = alive.iter().filter(|&&a| a).count();
        Self {
            alive,
            version,
            live_count,
        }
    }

    /// All `n` nodes up, at version 0.
    pub fn all_alive(n: usize) -> Self {
        Self::new(vec![true; n], 0)
    }

    /// Number of nodes the set describes.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the set describes zero nodes.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Whether `node` is up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// The lifecycle version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of nodes currently up.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Whether every node is up (repair is the identity then).
    pub fn is_fully_alive(&self) -> bool {
        self.live_count == self.alive.len()
    }

    /// The raw per-node flags, indexed by node id.
    pub fn alive_flags(&self) -> &[bool] {
        &self.alive
    }
}

/// How the topology layer reacts to crashed nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RepairPolicy {
    /// No repair: dead nodes stay in the graph and their neighbours keep
    /// addressing them (the pre-repair engine behaviour, bit for bit).
    #[default]
    None,
    /// Pair up the half-edges orphaned by dead nodes among the survivors
    /// that lost them, preserving every survivor's degree where a simple
    /// matching exists (then restore connectivity).
    DegreePreserving,
    /// Survivors replace each lost edge with a seeded uniform draw from the
    /// live nodes — the repair a Cyclon-style peer-sampling service
    /// performs when its views self-heal (then restore connectivity).
    PeerSamplingResample,
}

impl RepairPolicy {
    /// Whether this policy never changes a topology.
    pub fn is_none(&self) -> bool {
        *self == RepairPolicy::None
    }

    /// Repairs `base` around the dead nodes of `live`, deterministically in
    /// `(base, live, seed, round)` — the live set's version participates in
    /// the seeding, so each crash/rejoin epoch rewires its own way while
    /// replays stay bit-stable.
    ///
    /// With [`RepairPolicy::None`], or when every node is alive, the
    /// returned topology shares `base`'s graph and weights unchanged (the
    /// round-trip guarantee: once the last node rejoins, the original
    /// graph is back, exactly).
    ///
    /// # Panics
    ///
    /// Panics if `live.len()` mismatches the graph size.
    pub fn apply(
        self,
        base: &RoundTopology,
        live: &LiveSet,
        seed: u64,
        round: usize,
    ) -> RepairOutcome {
        let n = base.graph.len();
        assert_eq!(live.len(), n, "live set size mismatches graph");
        let dead_neighbors = dead_neighbor_counts(&base.graph, live);
        if self.is_none() || live.is_fully_alive() {
            return RepairOutcome {
                topology: base.clone(),
                edges_added: 0,
                edges_removed: 0,
                dead_neighbors,
            };
        }
        // Keep only survivor–survivor edges.
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(base.graph.num_edges());
        let mut present: HashSet<(usize, usize)> = HashSet::new();
        let mut degree = vec![0usize; n];
        let mut removed = 0u64;
        for (a, b) in base.graph.edges() {
            if live.is_alive(a) && live.is_alive(b) {
                edges.push((a, b));
                present.insert((a, b));
                degree[a] += 1;
                degree[b] += 1;
            } else {
                removed += 1;
            }
        }
        let mut rng = rewire_rng(seed, round, live.version());
        let mut added = 0u64;
        match self {
            RepairPolicy::None => unreachable!("handled above"),
            RepairPolicy::DegreePreserving => {
                added += pair_orphan_stubs(
                    &dead_neighbors,
                    live,
                    &mut edges,
                    &mut present,
                    &mut degree,
                    &mut rng,
                );
            }
            RepairPolicy::PeerSamplingResample => {
                added += resample_lost_edges(
                    &dead_neighbors,
                    live,
                    &mut edges,
                    &mut present,
                    &mut degree,
                    &mut rng,
                );
            }
        }
        added += reconnect_components(n, live, &mut edges, &mut degree);
        let graph =
            Graph::from_edges(n, &edges).expect("repair only produces in-range, loop-free edges");
        RepairOutcome {
            topology: RoundTopology::new(graph),
            edges_added: added,
            edges_removed: removed,
            dead_neighbors,
        }
    }
}

/// The result of one repair resolution.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired graph with freshly computed Metropolis–Hastings
    /// weights. Dead nodes are present but isolated (degree 0, self-weight
    /// 1), so node indices stay stable.
    pub topology: RoundTopology,
    /// Edges the re-wiring added between survivors.
    pub edges_added: u64,
    /// Base-graph edges removed because an endpoint is dead.
    pub edges_removed: u64,
    /// Per live node: how many of the *supplied base graph*'s neighbours
    /// are currently dead — the sends the repaired topology avoids. Zero
    /// for dead nodes. Note the caveat on [`dead_neighbor_counts`]: if the
    /// base came from a live-aware provider this is already zero; count on
    /// the liveness-blind graph for savings accounting.
    pub dead_neighbors: Vec<u64>,
}

/// Per live node, how many of `graph`'s neighbours are dead in `live`
/// (zero for dead nodes). This is the bandwidth-savings accounting: pass
/// the *liveness-blind* graph (what the provider would use without
/// repair) — a live-aware provider such as `PeerSampling::topology_for`
/// already filters dead peers out of its output, so counting on that
/// graph would always report zero avoided sends.
pub fn dead_neighbor_counts(graph: &Graph, live: &LiveSet) -> Vec<u64> {
    let mut dead = vec![0u64; graph.len()];
    for (a, b) in graph.edges() {
        if live.is_alive(a) && !live.is_alive(b) {
            dead[a] += 1;
        }
        if live.is_alive(b) && !live.is_alive(a) {
            dead[b] += 1;
        }
    }
    dead
}

/// SplitMix64 over `(seed, round, version)`: decorrelated per-epoch streams.
fn rewire_rng(seed: u64, round: usize, version: u64) -> ChaCha8Rng {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1))
        .wrapping_add(0x94D0_49BB_1331_11EBu64.wrapping_mul(version + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

fn key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

/// Degree-preserving pairing: every live node that lost `k` edges to dead
/// neighbours contributes `k` stubs; stubs are shuffled and greedily paired
/// (no self-loops, no duplicate edges), with re-shuffles of the leftovers.
/// Unmatchable leftovers (odd counts, saturated neighbourhoods) are dropped
/// — those nodes run the round at a slightly lower degree.
fn pair_orphan_stubs(
    dead_neighbors: &[u64],
    live: &LiveSet,
    edges: &mut Vec<(usize, usize)>,
    present: &mut HashSet<(usize, usize)>,
    degree: &mut [usize],
    rng: &mut ChaCha8Rng,
) -> u64 {
    let mut stubs: Vec<usize> = (0..dead_neighbors.len())
        .filter(|&v| live.is_alive(v))
        .flat_map(|v| std::iter::repeat_n(v, dead_neighbors[v] as usize))
        .collect();
    let mut added = 0u64;
    let mut stalls = 0usize;
    while stubs.len() >= 2 {
        stubs.shuffle(rng);
        let mut leftover = Vec::new();
        let mut progress = false;
        let mut it = stubs.chunks_exact(2);
        for pair in &mut it {
            let (a, b) = key(pair[0], pair[1]);
            if a != b && !present.contains(&(a, b)) {
                present.insert((a, b));
                edges.push((a, b));
                degree[a] += 1;
                degree[b] += 1;
                added += 1;
                progress = true;
            } else {
                leftover.extend_from_slice(pair);
            }
        }
        leftover.extend_from_slice(it.remainder());
        if progress {
            stalls = 0;
        } else {
            stalls += 1;
            // No pairable stubs remain (or we are thrashing on a tiny
            // tail): accept the degree deficit and stop.
            let any_suitable = leftover.iter().enumerate().any(|(i, &a)| {
                leftover[i + 1..]
                    .iter()
                    .any(|&b| a != b && !present.contains(&key(a, b)))
            });
            if !any_suitable || stalls > 16 {
                break;
            }
        }
        stubs = leftover;
    }
    added
}

/// Peer-sampling-style resample: each live node replaces each lost edge
/// with a uniform draw from the live nodes (skipping itself and existing
/// neighbours). Saturated neighbourhoods leave a deficit.
fn resample_lost_edges(
    dead_neighbors: &[u64],
    live: &LiveSet,
    edges: &mut Vec<(usize, usize)>,
    present: &mut HashSet<(usize, usize)>,
    degree: &mut [usize],
    rng: &mut ChaCha8Rng,
) -> u64 {
    let live_nodes: Vec<usize> = (0..dead_neighbors.len())
        .filter(|&v| live.is_alive(v))
        .collect();
    if live_nodes.len() < 2 {
        return 0;
    }
    let mut added = 0u64;
    let attempts = (4 * live_nodes.len()).max(16);
    for &v in &live_nodes {
        for _ in 0..dead_neighbors[v] {
            for _ in 0..attempts {
                let u = live_nodes[(rng.next_u64() % live_nodes.len() as u64) as usize];
                if u != v && !present.contains(&key(u, v)) {
                    present.insert(key(u, v));
                    edges.push((v, u));
                    degree[v] += 1;
                    degree[u] += 1;
                    added += 1;
                    break;
                }
            }
        }
    }
    added
}

/// If the survivors split into several components, chain them together
/// (ordered by lowest member id) through each component's lowest-degree,
/// lowest-id node — at most two bridge edges per node.
fn reconnect_components(
    n: usize,
    live: &LiveSet,
    edges: &mut Vec<(usize, usize)>,
    degree: &mut [usize],
) -> u64 {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges.iter() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if !live.is_alive(start) || comp[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![start];
        comp[start] = id;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if comp[u] == usize::MAX {
                    comp[u] = id;
                    members.push(u);
                    queue.push_back(u);
                }
            }
        }
        components.push(members);
    }
    let mut added = 0u64;
    // Components are already ordered by lowest member id (BFS start order).
    for k in 1..components.len() {
        let pick = |members: &[usize], degree: &[usize]| {
            members
                .iter()
                .copied()
                .min_by_key(|&v| (degree[v], v))
                .expect("components are non-empty")
        };
        let a = pick(&components[k - 1], degree);
        let b = pick(&components[k], degree);
        edges.push((a, b));
        degree[a] += 1;
        degree[b] += 1;
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use proptest::prelude::*;

    fn base(n: usize, d: usize, seed: u64) -> RoundTopology {
        RoundTopology::new(gen::random_regular(n, d, seed).unwrap())
    }

    fn live_without(n: usize, dead: &[usize]) -> LiveSet {
        let mut alive = vec![true; n];
        for &v in dead {
            alive[v] = false;
        }
        LiveSet::new(alive, dead.len() as u64)
    }

    #[test]
    fn live_set_accessors() {
        let l = live_without(6, &[2, 4]);
        assert_eq!(l.len(), 6);
        assert!(!l.is_empty());
        assert_eq!(l.live_count(), 4);
        assert!(!l.is_fully_alive());
        assert!(l.is_alive(0));
        assert!(!l.is_alive(2));
        assert_eq!(l.version(), 2);
        assert!(LiveSet::all_alive(3).is_fully_alive());
    }

    #[test]
    fn none_policy_is_identity_even_with_dead_nodes() {
        let topo = base(12, 4, 3);
        let live = live_without(12, &[1, 5]);
        let out = RepairPolicy::None.apply(&topo, &live, 9, 4);
        assert_eq!(*out.topology.graph, *topo.graph);
        assert_eq!(out.edges_added, 0);
        assert_eq!(out.edges_removed, 0);
        // Savings accounting is still reported (the engine needs it only
        // under active policies, but it is a pure function of the inputs).
        assert_eq!(out.dead_neighbors.iter().sum::<u64>() as usize, {
            let g = &topo.graph;
            g.neighbors(1).iter().filter(|&&v| v != 5).count()
                + g.neighbors(5).iter().filter(|&&v| v != 1).count()
        });
    }

    #[test]
    fn fully_alive_is_identity_for_every_policy() {
        let topo = base(12, 4, 3);
        let live = LiveSet::all_alive(12);
        for policy in [
            RepairPolicy::None,
            RepairPolicy::DegreePreserving,
            RepairPolicy::PeerSamplingResample,
        ] {
            let out = policy.apply(&topo, &live, 7, 0);
            assert_eq!(*out.topology.graph, *topo.graph, "{policy:?}");
            assert_eq!(out.edges_added, 0);
        }
    }

    #[test]
    fn degree_preserving_rewires_and_keeps_degrees() {
        let topo = base(16, 4, 7);
        let live = live_without(16, &[3, 11]);
        let out = RepairPolicy::DegreePreserving.apply(&topo, &live, 42, 0);
        let g = &out.topology.graph;
        assert!(g.is_connected_among(live.alive_flags()));
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree(11), 0);
        for v in 0..16 {
            if live.is_alive(v) {
                assert!(
                    g.degree(v) <= topo.graph.degree(v) + 2,
                    "degree bound violated at {v}: {} > {} + 2",
                    g.degree(v),
                    topo.graph.degree(v)
                );
            }
        }
        assert!(out.edges_added > 0, "orphaned stubs were paired");
        assert_eq!(out.edges_removed, 8, "two 4-degree nodes removed");
        // Fresh MH weights row-sum to 1 on the repaired graph.
        for v in 0..16 {
            let sum = out.topology.weights.self_weight(v)
                + out.topology.weights.neighbor_weights(v).iter().sum::<f64>();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn repair_is_deterministic_and_epoch_keyed() {
        let topo = base(20, 4, 5);
        let live = live_without(20, &[2, 9, 14]);
        let a = RepairPolicy::DegreePreserving.apply(&topo, &live, 7, 3);
        let b = RepairPolicy::DegreePreserving.apply(&topo, &live, 7, 3);
        assert_eq!(
            *a.topology.graph, *b.topology.graph,
            "same inputs, same graph"
        );
        // A different lifecycle version rewires differently (w.h.p.).
        let later = LiveSet::new(live.alive_flags().to_vec(), live.version() + 2);
        let c = RepairPolicy::DegreePreserving.apply(&topo, &later, 7, 3);
        assert_ne!(*a.topology.graph, *c.topology.graph);
    }

    #[test]
    fn resample_draws_only_live_peers() {
        let topo = base(16, 4, 11);
        let live = live_without(16, &[0, 7, 8]);
        let out = RepairPolicy::PeerSamplingResample.apply(&topo, &live, 3, 1);
        let g = &out.topology.graph;
        for (a, b) in g.edges() {
            assert!(
                live.is_alive(a) && live.is_alive(b),
                "edge ({a},{b}) touches a dead node"
            );
        }
        assert!(g.is_connected_among(live.alive_flags()));
        assert!(out.edges_added > 0);
    }

    #[test]
    fn rejoin_round_trips_to_the_original_graph() {
        // Crash → repair, then everyone back up → the base graph, exactly.
        let topo = base(12, 4, 9);
        let crashed = live_without(12, &[4]);
        let repaired = RepairPolicy::DegreePreserving.apply(&topo, &crashed, 1, 0);
        assert_ne!(*repaired.topology.graph, *topo.graph);
        let healed = LiveSet::new(vec![true; 12], crashed.version() + 1);
        for policy in [
            RepairPolicy::None,
            RepairPolicy::DegreePreserving,
            RepairPolicy::PeerSamplingResample,
        ] {
            let out = policy.apply(&topo, &healed, 1, 0);
            assert_eq!(*out.topology.graph, *topo.graph, "{policy:?}");
        }
    }

    #[test]
    fn survives_extreme_crash_sets() {
        let topo = base(8, 3, 2);
        // All but one dead.
        let live = live_without(8, &[1, 2, 3, 4, 5, 6, 7]);
        let out = RepairPolicy::DegreePreserving.apply(&topo, &live, 5, 0);
        assert_eq!(out.topology.graph.num_edges(), 0);
        assert!(out.topology.graph.is_connected_among(live.alive_flags()));
        // All dead.
        let none = LiveSet::new(vec![false; 8], 8);
        let out = RepairPolicy::PeerSamplingResample.apply(&topo, &none, 5, 0);
        assert_eq!(out.topology.graph.num_edges(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// DegreePreserving output is connected among survivors and
        /// degree-bounded (original degree + 2) for random crash sets.
        #[test]
        fn degree_preserving_connected_and_bounded(
            n in 8usize..40,
            d in 3usize..5,
            seed in any::<u64>(),
            crash_bits in any::<u64>(),
        ) {
            prop_assume!(n * d % 2 == 0 && d < n);
            let topo = base(n, d, seed);
            let mut alive: Vec<bool> = (0..n).map(|v| crash_bits >> (v % 64) & 1 == 0 || v % 7 == 0).collect();
            // Keep at least two nodes alive so repair has something to do.
            alive[0] = true;
            alive[1] = true;
            let live = LiveSet::new(alive, crash_bits.count_ones() as u64);
            let out = RepairPolicy::DegreePreserving.apply(&topo, &live, seed ^ 0xAB, 2);
            let g = &out.topology.graph;
            prop_assert!(g.is_connected_among(live.alive_flags()));
            for v in 0..n {
                if live.is_alive(v) {
                    prop_assert!(g.degree(v) <= d + 2, "node {v}: {} > {}", g.degree(v), d + 2);
                } else {
                    prop_assert_eq!(g.degree(v), 0, "dead node {v} kept edges");
                }
            }
        }

        /// Repeated crash/rejoin cycles round-trip: under `None` the graph
        /// never changes, and under the active policies a fully-recovered
        /// cluster is back on the original graph bit for bit.
        #[test]
        fn crash_rejoin_cycles_round_trip(
            n in 8usize..32,
            seed in any::<u64>(),
            cycles in 1usize..4,
        ) {
            prop_assume!(n % 2 == 0);
            let topo = base(n, 4, seed);
            let mut version = 0u64;
            for cycle in 0..cycles {
                let dead = [(cycle * 3) % n, (cycle * 5 + 1) % n];
                let mut alive = vec![true; n];
                for &v in &dead { alive[v] = false; }
                version += dead.len() as u64;
                let down = LiveSet::new(alive, version);
                let none = RepairPolicy::None.apply(&topo, &down, seed, cycle);
                prop_assert_eq!(&*none.topology.graph, &*topo.graph);
                version += dead.len() as u64; // everyone rejoins
                let up = LiveSet::new(vec![true; n], version);
                for policy in [RepairPolicy::DegreePreserving, RepairPolicy::PeerSamplingResample] {
                    let out = policy.apply(&topo, &up, seed, cycle);
                    prop_assert_eq!(&*out.topology.graph, &*topo.graph);
                }
            }
        }

        /// Resample never wires a dead endpoint and stays connected.
        #[test]
        fn resample_connected_and_live_only(
            n in 8usize..40,
            seed in any::<u64>(),
            crash_bits in any::<u64>(),
        ) {
            prop_assume!(n % 2 == 0);
            let topo = base(n, 4, seed);
            let mut alive: Vec<bool> = (0..n).map(|v| crash_bits >> (v % 64) & 1 == 0 || v % 5 == 0).collect();
            alive[0] = true;
            alive[1] = true;
            let live = LiveSet::new(alive, 1 + crash_bits % 17);
            let out = RepairPolicy::PeerSamplingResample.apply(&topo, &live, seed ^ 0x5A, 1);
            let g = &out.topology.graph;
            for (a, b) in g.edges() {
                prop_assert!(live.is_alive(a) && live.is_alive(b));
            }
            prop_assert!(g.is_connected_among(live.alive_flags()));
        }
    }
}
