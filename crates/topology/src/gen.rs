//! Graph generators.
//!
//! [`random_regular`] implements the pairing (configuration) model the paper
//! uses for its random `d`-regular topologies, with rejection of self-loops,
//! parallel edges and disconnected outcomes. The remaining generators cover
//! classic baselines used in decentralized-learning studies.

use crate::{Graph, TopologyError};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Maximum pairing-model restarts before giving up. For `3 <= d << n` a
/// single attempt succeeds with probability bounded away from zero, so this
/// budget is effectively never exhausted.
const MAX_ATTEMPTS: usize = 1000;

/// Generates a uniformly random simple connected `d`-regular graph on `n`
/// vertices via the pairing model, deterministically from `seed`.
///
/// # Errors
///
/// - [`TopologyError::InfeasibleRegular`] when `n * d` is odd, `d >= n`, or
///   `d == 0` with `n > 1`.
/// - [`TopologyError::GenerationFailed`] if no simple connected graph is
///   found within the attempt budget.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, TopologyError> {
    if n == 0 {
        return Graph::from_edges(0, &[]);
    }
    if d >= n || !(n * d).is_multiple_of(2) || (d == 0 && n > 1) {
        return Err(TopologyError::InfeasibleRegular {
            nodes: n,
            degree: d,
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'attempt: for _ in 0..MAX_ATTEMPTS {
        // Steger–Wormald-style pairing with leftover recycling: shuffle the
        // stub multiset, greedily pair valid stubs, re-queue clashes, and
        // restart the whole attempt once no suitable pair remains. Unlike the
        // naive pairing model (success probability e^{-(d²-1)/4}, hopeless
        // for d >= 5) this succeeds w.h.p. in a handful of passes.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut stalls = 0usize;
        while !stubs.is_empty() {
            stubs.shuffle(&mut rng);
            let mut leftover = Vec::new();
            let mut progress = false;
            let mut it = stubs.chunks_exact(2);
            for pair in &mut it {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if a != b && seen.insert((a, b)) {
                    edges.push((a, b));
                    progress = true;
                } else {
                    leftover.extend_from_slice(pair);
                }
            }
            leftover.extend_from_slice(it.remainder());
            if !progress {
                stalls += 1;
                // If no suitable pair exists at all (or we are thrashing),
                // this attempt is dead: restart from scratch.
                let any_suitable = leftover.iter().enumerate().any(|(i, &a)| {
                    leftover[i + 1..]
                        .iter()
                        .any(|&b| a != b && !seen.contains(&(a.min(b), a.max(b))))
                });
                if !any_suitable || stalls > 50 {
                    continue 'attempt;
                }
            } else {
                stalls = 0;
            }
            stubs = leftover;
        }
        let graph = Graph::from_edges(n, &edges)?;
        if graph.is_connected() {
            return Ok(graph);
        }
    }
    Err(TopologyError::GenerationFailed)
}

/// Ring lattice: vertex `i` connects to `i ± 1 (mod n)`.
///
/// # Errors
///
/// Never fails for `n != 2`; `n == 2` degenerates to a single edge.
pub fn ring(n: usize) -> Result<Graph, TopologyError> {
    if n < 2 {
        return Graph::from_edges(n, &[]);
    }
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

/// Complete graph on `n` vertices (the all-to-all baseline).
///
/// # Errors
///
/// Never fails.
pub fn full(n: usize) -> Result<Graph, TopologyError> {
    let mut edges = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for a in 0..n {
        for b in a + 1..n {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Star: vertex 0 is the hub (models the parameter-server shape the paper
/// contrasts against).
///
/// # Errors
///
/// Never fails.
pub fn star(n: usize) -> Result<Graph, TopologyError> {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges)
}

/// 2-D torus of `rows × cols` vertices, each joined to its four lattice
/// neighbours.
///
/// # Errors
///
/// Never fails for `rows, cols >= 1` (degenerate sizes collapse duplicates).
pub fn torus(rows: usize, cols: usize) -> Result<Graph, TopologyError> {
    let n = rows * cols;
    if rows < 2 || cols < 2 {
        // Degenerates to a ring (or smaller).
        return ring(n);
    }
    let mut edges = Vec::with_capacity(2 * n);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            edges.push((at(r, c), at(r, (c + 1) % cols)));
            edges.push((at(r, c), at((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regular_graph_is_regular_connected_deterministic() {
        for (n, d) in [(8, 3), (96, 4), (33, 4), (20, 5)] {
            let g = random_regular(n, d, 1234).unwrap();
            assert_eq!(g.len(), n);
            for v in 0..n {
                assert_eq!(g.degree(v), d, "n={n} d={d} v={v}");
            }
            assert!(g.is_connected());
            let g2 = random_regular(n, d, 1234).unwrap();
            assert_eq!(g, g2, "same seed must reproduce the same graph");
            let g3 = random_regular(n, d, 1235).unwrap();
            assert_ne!(g, g3, "different seeds should differ (w.h.p.)");
        }
    }

    #[test]
    fn infeasible_regular_rejected() {
        assert!(matches!(
            random_regular(5, 3, 0),
            Err(TopologyError::InfeasibleRegular { .. })
        )); // odd n*d
        assert!(matches!(
            random_regular(4, 4, 0),
            Err(TopologyError::InfeasibleRegular { .. })
        )); // d >= n
        assert!(matches!(
            random_regular(3, 0, 0),
            Err(TopologyError::InfeasibleRegular { .. })
        ));
    }

    #[test]
    fn ring_shape() {
        let g = ring(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        for v in 0..6 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_connected());
        assert_eq!(ring(2).unwrap().num_edges(), 1);
        assert_eq!(ring(1).unwrap().num_edges(), 0);
    }

    #[test]
    fn full_shape() {
        let g = full(5).unwrap();
        assert_eq!(g.num_edges(), 10);
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7).unwrap();
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4).unwrap();
        assert_eq!(g.len(), 12);
        for v in 0..12 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
        // 2xN torus collapses duplicate vertical edges.
        let g2 = torus(2, 3).unwrap();
        assert!(g2.is_connected());
    }

    #[test]
    fn paper_configurations_generate() {
        // The exact (n, d) pairs from §IV-B and §IV-F.
        for (n, d) in [(96, 4), (192, 5), (288, 5), (384, 6)] {
            let g = random_regular(n, d, 42).unwrap();
            assert!(g.is_connected());
            assert!(g.edges().count() == n * d / 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_regular_invariants(n in 4usize..60, d in 2usize..5, seed in any::<u64>()) {
            prop_assume!(n * d % 2 == 0 && d < n);
            let g = random_regular(n, d, seed).unwrap();
            // Symmetry: u in adj(v) <=> v in adj(u).
            for v in 0..n {
                prop_assert_eq!(g.degree(v), d);
                for &u in g.neighbors(v) {
                    prop_assert!(g.neighbors(u).contains(&v));
                    prop_assert_ne!(u, v);
                }
            }
            prop_assert!(g.is_connected());
        }
    }
}
