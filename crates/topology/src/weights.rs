//! Metropolis–Hastings mixing weights (Xiao & Boyd, 2004).
//!
//! D-PSGD averages neighbour models with a doubly stochastic weight matrix.
//! The Metropolis–Hastings construction needs only local degree information:
//!
//! ```text
//! w_ij = 1 / (1 + max(deg(i), deg(j)))   for {i,j} ∈ E
//! w_ii = 1 − Σ_{j ∈ N(i)} w_ij
//! ```
//!
//! It is symmetric and doubly stochastic on any simple graph, which makes
//! plain gossip averaging converge to the exact global mean — the property
//! the consensus tests in `jwins` rely on.

use crate::Graph;

/// Row-compressed Metropolis–Hastings weights aligned with a graph's
/// adjacency lists.
#[derive(Debug, Clone, PartialEq)]
pub struct MetropolisWeights {
    self_weight: Vec<f64>,
    /// `neighbor_weights[v][k]` pairs with `graph.neighbors(v)[k]`.
    neighbor_weights: Vec<Vec<f64>>,
}

impl MetropolisWeights {
    /// Computes the weights for `graph`.
    pub fn for_graph(graph: &Graph) -> Self {
        let n = graph.len();
        let mut self_weight = vec![1.0; n];
        let mut neighbor_weights = vec![Vec::new(); n];
        for v in 0..n {
            let deg_v = graph.degree(v);
            let mut row_sum = 0.0;
            let weights: Vec<f64> = graph
                .neighbors(v)
                .iter()
                .map(|&u| {
                    let w = 1.0 / (1.0 + deg_v.max(graph.degree(u)) as f64);
                    row_sum += w;
                    w
                })
                .collect();
            neighbor_weights[v] = weights;
            self_weight[v] = 1.0 - row_sum;
        }
        Self {
            self_weight,
            neighbor_weights,
        }
    }

    /// Number of rows (vertices).
    pub fn len(&self) -> usize {
        self.self_weight.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.self_weight.is_empty()
    }

    /// Diagonal entry `w_vv`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn self_weight(&self, v: usize) -> f64 {
        self.self_weight[v]
    }

    /// Off-diagonal entries of row `v`, aligned with the graph's neighbour
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_weights(&self, v: usize) -> &[f64] {
        &self.neighbor_weights[v]
    }

    /// Applies one gossip-averaging step to a set of per-node scalars:
    /// `x'[v] = w_vv x[v] + Σ w_vu x[u]`. Exposed for tests and spectral
    /// diagnostics.
    pub fn mix_scalars(&self, graph: &Graph, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "dimension mismatch");
        (0..x.len())
            .map(|v| {
                let mut acc = self.self_weight[v] * x[v];
                for (&u, &w) in graph.neighbors(v).iter().zip(&self.neighbor_weights[v]) {
                    acc += w * x[u];
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use proptest::prelude::*;

    fn check_doubly_stochastic(graph: &Graph, w: &MetropolisWeights) {
        let n = graph.len();
        // Row sums.
        for v in 0..n {
            let sum: f64 = w.self_weight(v) + w.neighbor_weights(v).iter().sum::<f64>();
            assert!((sum - 1.0).abs() < 1e-12, "row {v} sums to {sum}");
            assert!(w.self_weight(v) >= 0.0, "negative diagonal at {v}");
        }
        // Symmetry w_uv == w_vu (implies column sums too).
        for v in 0..n {
            for (k, &u) in graph.neighbors(v).iter().enumerate() {
                let w_vu = w.neighbor_weights(v)[k];
                let pos = graph.neighbors(u).iter().position(|&x| x == v).unwrap();
                let w_uv = w.neighbor_weights(u)[pos];
                assert!((w_vu - w_uv).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn regular_graph_weights() {
        let g = gen::random_regular(12, 4, 3).unwrap();
        let w = MetropolisWeights::for_graph(&g);
        check_doubly_stochastic(&g, &w);
        // On a d-regular graph every off-diagonal weight is 1/(d+1).
        for v in 0..12 {
            for &wv in w.neighbor_weights(v) {
                assert!((wv - 1.0 / 5.0).abs() < 1e-15);
            }
            assert!((w.self_weight(v) - 1.0 / 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_graph_weights() {
        let g = gen::star(5).unwrap();
        let w = MetropolisWeights::for_graph(&g);
        check_doubly_stochastic(&g, &w);
        // Hub: four links of weight 1/5 each, self weight 1/5.
        assert!((w.self_weight(0) - 0.2).abs() < 1e-12);
        // Leaves keep most of their own mass.
        assert!((w.self_weight(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mixing_preserves_mean_and_contracts() {
        let g = gen::random_regular(16, 4, 9).unwrap();
        let w = MetropolisWeights::for_graph(&g);
        let mut x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mean = x.iter().sum::<f64>() / 16.0;
        let spread0 = x.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        for _ in 0..60 {
            x = w.mix_scalars(&g, &x);
        }
        let mean_after = x.iter().sum::<f64>() / 16.0;
        assert!((mean - mean_after).abs() < 1e-9, "mean drifted");
        let spread = x.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(spread < spread0 * 1e-3, "no contraction: {spread}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn doubly_stochastic_on_random_graphs(n in 4usize..40, d in 2usize..5, seed in any::<u64>()) {
            prop_assume!(n * d % 2 == 0 && d < n);
            let g = gen::random_regular(n, d, seed).unwrap();
            let w = MetropolisWeights::for_graph(&g);
            check_doubly_stochastic(&g, &w);
        }

        #[test]
        fn doubly_stochastic_on_irregular_graphs(n in 3usize..30, extra in 0usize..40, seed in any::<u64>()) {
            // Ring plus random chords: irregular degrees.
            let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let mut s = seed | 1;
            for _ in 0..extra {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let a = (s % n as u64) as usize;
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let b = (s % n as u64) as usize;
                if a != b { edges.push((a.min(b), a.max(b))); }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let w = MetropolisWeights::for_graph(&g);
            check_doubly_stochastic(&g, &w);
        }
    }
}
