//! Static and per-round dynamic topology providers.
//!
//! Figure 7 of the paper randomizes each node's neighbours every round
//! without moving any data, which mixes models faster and lifts the accuracy
//! of both full-sharing and JWINS. A [`TopologyProvider`] abstracts over the
//! static and dynamic cases so the training engine is agnostic to which one
//! is in use.

use crate::gen::random_regular;
use crate::repair::LiveSet;
use crate::weights::MetropolisWeights;
use crate::{Graph, TopologyError};
use std::sync::Arc;

/// A graph paired with its Metropolis–Hastings weights, shared immutably
/// across the engine's worker threads.
#[derive(Debug, Clone)]
pub struct RoundTopology {
    /// The communication graph for this round.
    pub graph: Arc<Graph>,
    /// Mixing weights for [`Self::graph`].
    pub weights: Arc<MetropolisWeights>,
}

impl RoundTopology {
    /// Bundles a graph with freshly computed MH weights.
    pub fn new(graph: Graph) -> Self {
        let weights = MetropolisWeights::for_graph(&graph);
        Self {
            graph: Arc::new(graph),
            weights: Arc::new(weights),
        }
    }
}

/// Supplies the communication graph for every training round.
pub trait TopologyProvider: Send + Sync {
    /// Number of nodes all produced graphs must have.
    fn nodes(&self) -> usize;

    /// The topology used in `round`. Must be deterministic in `round`.
    fn topology(&self, round: usize) -> RoundTopology;

    /// Liveness-aware resolution path: the topology used in `round` given
    /// which nodes are currently up. Must be deterministic in
    /// `(round, live)`. The default ignores liveness and returns
    /// [`Self::topology`] — providers with their own membership state (e.g.
    /// [`crate::peer_sampling::PeerSampling`]) override it to avoid sampling
    /// dead peers in the first place. Callers wanting survivors *re-wired*
    /// around the holes pass the result through
    /// [`crate::repair::RepairPolicy::apply`].
    fn topology_for(&self, round: usize, live: &LiveSet) -> RoundTopology {
        let _ = live;
        self.topology(round)
    }

    /// Whether [`Self::topology_for`] actually consults the live set. The
    /// default (`false`, matching the default `topology_for`) lets callers
    /// reuse the live-resolved graph where a liveness-*blind* one is
    /// needed — e.g. the engine's avoided-sends accounting — instead of
    /// resolving the round twice. Override to `true` together with
    /// `topology_for`.
    fn is_live_aware(&self) -> bool {
        false
    }

    /// Whether the graph changes between rounds (used by strategies such as
    /// CHOCO-SGD whose state assumes a fixed neighbourhood).
    fn is_dynamic(&self) -> bool;
}

/// The same graph every round (the paper's default).
#[derive(Debug, Clone)]
pub struct StaticTopology {
    round: RoundTopology,
    nodes: usize,
}

impl StaticTopology {
    /// Wraps a fixed graph.
    pub fn new(graph: Graph) -> Self {
        let nodes = graph.len();
        Self {
            round: RoundTopology::new(graph),
            nodes,
        }
    }

    /// Convenience: a random `d`-regular static topology.
    ///
    /// # Errors
    ///
    /// Propagates generator errors for infeasible `(n, d)`.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Self, TopologyError> {
        Ok(Self::new(random_regular(n, d, seed)?))
    }
}

impl TopologyProvider for StaticTopology {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn topology(&self, _round: usize) -> RoundTopology {
        self.round.clone()
    }

    fn is_dynamic(&self) -> bool {
        false
    }
}

/// A fresh random `d`-regular graph every round, deterministic in
/// `(seed, round)` — the paper's "dynamic topology" (Figure 7).
#[derive(Debug, Clone)]
pub struct DynamicRegular {
    nodes: usize,
    degree: usize,
    seed: u64,
}

impl DynamicRegular {
    /// Creates the provider, validating feasibility once up front.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InfeasibleRegular`] for impossible `(n, d)`.
    pub fn new(nodes: usize, degree: usize, seed: u64) -> Result<Self, TopologyError> {
        // Validate by generating round 0 once.
        random_regular(nodes, degree, seed)?;
        Ok(Self {
            nodes,
            degree,
            seed,
        })
    }
}

impl TopologyProvider for DynamicRegular {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn topology(&self, round: usize) -> RoundTopology {
        let round_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round as u64);
        let graph = random_regular(self.nodes, self.degree, round_seed)
            .expect("feasibility was validated in the constructor");
        RoundTopology::new(graph)
    }

    fn is_dynamic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn static_provider_repeats_the_same_graph() {
        let provider = StaticTopology::random_regular(12, 4, 5).unwrap();
        let a = provider.topology(0);
        let b = provider.topology(999);
        assert_eq!(*a.graph, *b.graph);
        assert!(!provider.is_dynamic());
        assert_eq!(provider.nodes(), 12);
    }

    #[test]
    fn dynamic_provider_changes_but_is_deterministic() {
        let provider = DynamicRegular::new(16, 4, 7).unwrap();
        assert!(provider.is_dynamic());
        let r0 = provider.topology(0);
        let r1 = provider.topology(1);
        assert_ne!(*r0.graph, *r1.graph, "rounds should differ w.h.p.");
        let r0_again = provider.topology(0);
        assert_eq!(*r0.graph, *r0_again.graph, "same round must reproduce");
        for round in 0..5 {
            let t = provider.topology(round);
            assert!(t.graph.is_connected());
            for v in 0..16 {
                assert_eq!(t.graph.degree(v), 4);
            }
        }
    }

    #[test]
    fn dynamic_rejects_infeasible() {
        assert!(DynamicRegular::new(5, 3, 0).is_err());
    }

    #[test]
    fn round_topology_weights_match_graph() {
        let g = gen::ring(8).unwrap();
        let rt = RoundTopology::new(g);
        for v in 0..8 {
            let sum: f64 =
                rt.weights.self_weight(v) + rt.weights.neighbor_weights(v).iter().sum::<f64>();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }
}
