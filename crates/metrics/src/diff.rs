//! Structural comparison of two recorded runs.
//!
//! Two traces of the same configuration and seed must be canonically
//! identical — that is the engine's determinism contract. When they are
//! not (a seed/config change, a regression, a determinism break), the
//! interesting fact is not "they differ" but **where they first diverge**
//! and **how the aggregates moved**. [`TraceDiff::compare`] canonicalizes
//! both streams (stripping the wall-clock side channel), finds the first
//! divergent event, and folds both streams through the
//! [`MetricsRegistry`] so the report carries
//! per-kind event-count deltas and summary-metric deltas alongside the
//! divergence context window. The `run_diff` bin in `jwins_bench` is the
//! command-line face of this module.

use crate::MetricsRegistry;
use jwins_trace::{replay, TraceEvent};
use std::collections::BTreeMap;

/// Default number of events shown on each side of a divergence.
pub const DEFAULT_CONTEXT: usize = 3;

/// The structural comparison of two canonicalized event streams.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Index of the first divergent canonical event; `None` when the
    /// streams are identical. A pure length mismatch diverges at the
    /// shorter stream's end.
    pub divergence: Option<usize>,
    /// Canonical event count of stream A.
    pub len_a: usize,
    /// Canonical event count of stream B.
    pub len_b: usize,
    /// Per-event-kind count deltas `(kind, count_a, count_b)`, only kinds
    /// whose counts differ, ordered by kind name.
    pub kind_deltas: Vec<(&'static str, u64, u64)>,
    /// Summary-metric deltas `(metric, value_a, value_b)`, only metrics
    /// whose values differ, in [`MetricsRegistry::summary`] order.
    pub metric_deltas: Vec<(&'static str, f64, f64)>,
    a: Vec<TraceEvent>,
    b: Vec<TraceEvent>,
}

impl TraceDiff {
    /// Compares two event streams canonically.
    pub fn compare(a: &[TraceEvent], b: &[TraceEvent]) -> Self {
        let a = replay::canonicalize(a);
        let b = replay::canonicalize(b);
        let divergence = a
            .iter()
            .zip(&b)
            .position(|(x, y)| x != y)
            .or_else(|| (a.len() != b.len()).then(|| a.len().min(b.len())));

        let mut kinds: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for event in &a {
            kinds.entry(event.kind_name()).or_default().0 += 1;
        }
        for event in &b {
            kinds.entry(event.kind_name()).or_default().1 += 1;
        }
        let kind_deltas = kinds
            .into_iter()
            .filter(|&(_, (ca, cb))| ca != cb)
            .map(|(kind, (ca, cb))| (kind, ca, cb))
            .collect();

        let summary_a = MetricsRegistry::from_events(crate::DEFAULT_WINDOW_S, &a).summary();
        let summary_b = MetricsRegistry::from_events(crate::DEFAULT_WINDOW_S, &b).summary();
        let metric_deltas = summary_a
            .into_iter()
            .zip(summary_b)
            .filter(|((_, va), (_, vb))| va != vb)
            .map(|((name, va), (_, vb))| (name, va, vb))
            .collect();

        Self {
            divergence,
            len_a: a.len(),
            len_b: b.len(),
            kind_deltas,
            metric_deltas,
            a,
            b,
        }
    }

    /// Whether the two streams are canonically identical.
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }

    /// A text report: the verdict, the divergence context window
    /// (`context` events on each side, divergent line marked `>`), the
    /// per-kind count deltas and the summary-metric deltas. Deterministic
    /// for deterministic inputs.
    pub fn render(&self, context: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let Some(index) = self.divergence else {
            let _ = writeln!(
                out,
                "traces are canonically identical ({} events)",
                self.len_a
            );
            return out;
        };
        let _ = writeln!(
            out,
            "first divergence at canonical event {index} (A has {} events, B has {})",
            self.len_a, self.len_b
        );
        let window = |out: &mut String, label: &str, events: &[TraceEvent]| {
            let _ = writeln!(out, "--- {label} ---");
            let lo = index.saturating_sub(context);
            let hi = (index + context + 1).min(events.len());
            for (i, event) in events.iter().enumerate().take(hi).skip(lo) {
                let marker = if i == index { '>' } else { ' ' };
                let _ = writeln!(out, "{marker} [{i:>6}] {}", serde::json::to_string(event));
            }
            if index >= events.len() {
                let _ = writeln!(out, "> [{index:>6}] <end of stream>");
            }
        };
        window(&mut out, "A", &self.a);
        window(&mut out, "B", &self.b);
        if !self.kind_deltas.is_empty() {
            out.push_str("event-kind count deltas (A vs B):\n");
            for (kind, ca, cb) in &self.kind_deltas {
                let _ = writeln!(out, "  {kind:<16} {ca:>8} -> {cb:>8}");
            }
        }
        if !self.metric_deltas.is_empty() {
            out.push_str("summary-metric deltas (A vs B):\n");
            for (name, va, vb) in &self.metric_deltas {
                let _ = writeln!(out, "  {name:<22} {va:>14.6} -> {vb:>14.6}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jwins_trace::BatchClass;

    fn stream(seed: u64, bytes: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                nodes: 2,
                rounds: 1,
                seed,
            },
            TraceEvent::MsgSend {
                t_ns: 10,
                from: 0,
                to: 1,
                round: 0,
                bytes,
                arrives_ns: 20,
            },
            TraceEvent::ExecuteBatch {
                t_ns: 30,
                class: BatchClass::Mix,
                round: 0,
                width: 2,
                queue_depth: 3,
                shard: 0,
                wall_start_ns: 999,
                propose_ns: 1,
                execute_ns: 2,
                commit_ns: 3,
            },
            TraceEvent::RunEnd {
                t_ns: 40,
                rounds_run: 1,
                queue_depth_hwm: 3,
            },
        ]
    }

    #[test]
    fn identical_streams_diff_empty_even_with_wall_noise() {
        let a = stream(7, 100);
        let mut b = stream(7, 100);
        // Perturb only the wall-clock side channel: still identical.
        if let TraceEvent::ExecuteBatch { propose_ns, .. } = &mut b[2] {
            *propose_ns = 12345;
        }
        let diff = TraceDiff::compare(&a, &b);
        assert!(diff.is_identical());
        assert!(diff.kind_deltas.is_empty());
        assert!(diff.metric_deltas.is_empty());
        assert!(diff.render(3).contains("canonically identical (4 events)"));
    }

    #[test]
    fn seed_change_diverges_at_the_header() {
        let diff = TraceDiff::compare(&stream(7, 100), &stream(8, 100));
        assert_eq!(diff.divergence, Some(0));
        let report = diff.render(3);
        assert!(report.contains("first divergence at canonical event 0"));
        assert!(report.contains("> [     0]"), "{report}");
    }

    #[test]
    fn payload_change_reports_metric_deltas() {
        let diff = TraceDiff::compare(&stream(7, 100), &stream(7, 164));
        assert_eq!(diff.divergence, Some(1));
        assert!(diff
            .metric_deltas
            .iter()
            .any(|&(name, va, vb)| name == "bytes_sent" && va == 100.0 && vb == 164.0));
        // Same kinds on both sides: no count deltas.
        assert!(diff.kind_deltas.is_empty());
    }

    #[test]
    fn truncation_diverges_at_the_shorter_end() {
        let a = stream(7, 100);
        let b = a[..2].to_vec();
        let diff = TraceDiff::compare(&a, &b);
        assert_eq!(diff.divergence, Some(2));
        assert!(diff
            .kind_deltas
            .iter()
            .any(|&(kind, ca, cb)| kind == "RunEnd" && ca == 1 && cb == 0));
        assert!(diff.render(3).contains("<end of stream>"));
    }
}
