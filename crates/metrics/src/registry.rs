//! The metrics registry: windowed counters, gauges and histograms folded
//! from the trace stream into per-node and per-edge time series.

use jwins_trace::{KillReason, TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Default aggregation window on the virtual clock, in seconds.
pub const DEFAULT_WINDOW_S: f64 = 1.0;

/// Upper bounds of the mix-staleness histogram buckets (seconds); the
/// implicit final bucket is `+Inf`.
const STALENESS_BUCKETS_S: [f64; 9] = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0];

/// Metrics-layer configuration, carried on `TrainConfig::metrics`.
///
/// The default writes nothing: the layer only activates when an export
/// path is set (or when a [`MetricsSink`] is attached explicitly). Like
/// trace sinks, attaching it is provably observational — no run output
/// bit changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Write the Prometheus text exposition of every aggregate here at the
    /// end of the run.
    #[serde(default)]
    pub prometheus_path: Option<String>,
    /// Write the windowed per-node/per-edge time series as CSV here at the
    /// end of the run.
    #[serde(default)]
    pub csv_path: Option<String>,
    /// Aggregation window on the virtual clock, in seconds.
    pub window_s: f64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            prometheus_path: None,
            csv_path: None,
            window_s: DEFAULT_WINDOW_S,
        }
    }
}

impl MetricsConfig {
    /// Whether no export is configured (the layer stays detached).
    pub fn is_noop(&self) -> bool {
        self.prometheus_path.is_none() && self.csv_path.is_none()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !self.window_s.is_finite()
        {
            return Err("metrics window_s must be positive and finite".into());
        }
        Ok(())
    }
}

/// Per-node running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeStats {
    /// Messages this node put on the wire.
    pub msgs_sent: u64,
    /// Bytes this node put on the wire.
    pub bytes_sent: u64,
    /// Messages lost at send time (loss model).
    pub msgs_dropped: u64,
    /// Bytes lost at send time.
    pub bytes_dropped: u64,
    /// Training completions.
    pub trains: u64,
    /// Virtual compute nanoseconds spent training.
    pub compute_ns: u64,
    /// Messages this node mixed into its aggregate.
    pub msgs_mixed: u64,
    /// Summed age (virtual seconds) of the messages it mixed.
    pub staleness_sum_s: f64,
    /// Messages TTL-expired or purged at this node.
    pub msgs_expired: u64,
    /// Messages destroyed at this node by crash/rejoin/repair purges.
    pub msgs_killed: u64,
    /// Crashes of this node.
    pub crashes: u64,
    /// Rejoins of this node.
    pub rejoins: u64,
    /// Rounds a crash abandoned in progress at this node.
    pub rounds_abandoned: u64,
    /// Byzantine perturbations this node injected into its outbound
    /// messages.
    pub attacks_injected: u64,
    /// Neighbour contributions the robust aggregation rule screened out at
    /// this node (trimmed entries, clipped messages).
    pub robust_clipped: u64,
    /// Mixing-weight mass the robust rule moved from neighbour
    /// contributions to this node's self-weight.
    pub mass_clipped: f64,
}

/// Per-directed-edge running totals (`from → to`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EdgeStats {
    /// Messages sent on the edge.
    pub msgs: u64,
    /// Bytes sent on the edge.
    pub bytes: u64,
    /// Messages the loss model dropped on the edge.
    pub drops: u64,
    /// Summed flight time (virtual ns) of the edge's deliveries.
    pub flight_ns_sum: u64,
    /// Messages from this edge that were actually mixed by the receiver.
    pub mixed: u64,
    /// Summed mix-time staleness (virtual seconds) of those messages.
    pub staleness_sum_s: f64,
}

/// One aggregation window of the per-node series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct NodeWindow {
    bytes_sent: u64,
    trains: u64,
    msgs_mixed: u64,
    staleness_sum_s: f64,
    msgs_expired: u64,
    attacks_injected: u64,
}

/// One aggregation window of the global series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct GlobalWindow {
    bytes_sent: u64,
    msgs_sent: u64,
    trains: u64,
    msgs_mixed: u64,
    msgs_expired: u64,
    lifecycle_events: u64,
    queue_depth_max: u32,
    /// Last mean accuracy evaluated inside the window.
    accuracy: Option<f64>,
}

/// Whole-run header/footer facts and cross-cutting totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunFacts {
    /// Cluster size from `RunStart` (0 before one is seen).
    pub nodes: u32,
    /// Configured rounds from `RunStart`.
    pub rounds_configured: u32,
    /// Master seed from `RunStart`.
    pub seed: u64,
    /// Final virtual time from `RunEnd` (ns).
    pub t_end_ns: u64,
    /// Rounds completed cluster-wide from `RunEnd`.
    pub rounds_run: u32,
    /// Event-queue high-water mark from `RunEnd`.
    pub queue_depth_hwm: u32,
    /// Evaluations observed.
    pub evals: u64,
    /// Last evaluated mean accuracy.
    pub final_accuracy: f64,
    /// `RoundComplete` events observed.
    pub rounds_completed: u64,
    /// Detour edges added by repair (summed over rewires).
    pub repair_edges_added: u64,
    /// Strategy pairing totals: successful warm-start pairings.
    pub pairing_paired: u64,
    /// Strategy pairing totals: fresh-plane fallbacks.
    pub pairing_fresh_resets: u64,
    /// Strategy pairing totals: pre-advance leftovers ignored.
    pub pairing_ignored: u64,
    /// Wall nanoseconds in the sequential propose phases.
    pub propose_wall_ns: u64,
    /// Wall nanoseconds in the parallel execute phases.
    pub execute_wall_ns: u64,
    /// Wall nanoseconds in the sequential commit phases.
    pub commit_wall_ns: u64,
    /// Parallel execute batches observed.
    pub batches: u64,
}

/// Streaming aggregation of a trace into per-node/per-edge totals, windowed
/// time series and histograms, exportable as Prometheus text and CSV.
///
/// Feed it events with [`MetricsRegistry::observe`] (a [`MetricsSink`] does
/// this from inside a run), or fold a whole recorded stream with
/// [`MetricsRegistry::from_events`]. All internal maps are ordered, so both
/// exports are byte-deterministic for a deterministic event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    window_ns: u64,
    run: RunFacts,
    nodes: BTreeMap<u32, NodeStats>,
    edges: BTreeMap<(u32, u32), EdgeStats>,
    global_windows: BTreeMap<u64, GlobalWindow>,
    node_windows: BTreeMap<(u32, u64), NodeWindow>,
    edge_windows: BTreeMap<(u32, u32, u64), u64>,
    /// Mix-staleness histogram: counts per `STALENESS_BUCKETS_S` bucket
    /// plus the trailing `+Inf` bucket, and the observation sum.
    staleness_counts: [u64; STALENESS_BUCKETS_S.len() + 1],
    staleness_sum_s: f64,
    /// Execute-batch width histogram over power-of-two buckets.
    width_counts: Vec<u64>,
    kills: BTreeMap<&'static str, u64>,
}

fn kill_reason_name(reason: KillReason) -> &'static str {
    match reason {
        KillReason::CrashInbox => "crash_inbox",
        KillReason::CrashInFlight => "crash_in_flight",
        KillReason::RejoinArrived => "rejoin_arrived",
        KillReason::RepairEdge => "repair_edge",
    }
}

impl MetricsRegistry {
    /// An empty registry aggregating over `window_s`-second windows of the
    /// virtual clock (clamped to at least one nanosecond).
    pub fn new(window_s: f64) -> Self {
        let window_ns = (window_s * 1e9).max(1.0) as u64;
        Self {
            window_ns: window_ns.max(1),
            ..Self::default()
        }
    }

    /// Folds a whole recorded stream.
    pub fn from_events(window_s: f64, events: &[TraceEvent]) -> Self {
        let mut registry = Self::new(window_s);
        for event in events {
            registry.observe(event);
        }
        registry
    }

    /// The aggregation window index of a virtual time.
    fn window(&self, t_ns: u64) -> u64 {
        t_ns / self.window_ns.max(1)
    }

    fn node(&mut self, node: u32) -> &mut NodeStats {
        self.nodes.entry(node).or_default()
    }

    fn node_window(&mut self, node: u32, t_ns: u64) -> &mut NodeWindow {
        let w = self.window(t_ns);
        self.node_windows.entry((node, w)).or_default()
    }

    fn global_window(&mut self, t_ns: u64) -> &mut GlobalWindow {
        let w = self.window(t_ns);
        self.global_windows.entry(w).or_default()
    }

    /// Consumes one event.
    pub fn observe(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::RunStart {
                nodes,
                rounds,
                seed,
            } => {
                self.run.nodes = nodes;
                self.run.rounds_configured = rounds;
                self.run.seed = seed;
            }
            TraceEvent::RunEnd {
                t_ns,
                rounds_run,
                queue_depth_hwm,
            } => {
                self.run.t_end_ns = t_ns;
                self.run.rounds_run = rounds_run;
                self.run.queue_depth_hwm = queue_depth_hwm;
            }
            TraceEvent::NodeCrash { t_ns, node, .. } => {
                self.node(node).crashes += 1;
                self.global_window(t_ns).lifecycle_events += 1;
            }
            TraceEvent::NodeRejoin { t_ns, node, .. } => {
                self.node(node).rejoins += 1;
                self.global_window(t_ns).lifecycle_events += 1;
            }
            TraceEvent::MsgSend {
                t_ns,
                from,
                to,
                bytes,
                arrives_ns,
                ..
            } => {
                let n = self.node(from);
                n.msgs_sent += 1;
                n.bytes_sent += bytes;
                let e = self.edges.entry((from, to)).or_default();
                e.msgs += 1;
                e.bytes += bytes;
                e.flight_ns_sum += arrives_ns.saturating_sub(t_ns);
                let nw = self.node_window(from, t_ns);
                nw.bytes_sent += bytes;
                let w = self.window(t_ns);
                *self.edge_windows.entry((from, to, w)).or_default() += bytes;
                let gw = self.global_window(t_ns);
                gw.bytes_sent += bytes;
                gw.msgs_sent += 1;
            }
            TraceEvent::MsgDrop {
                from, to, bytes, ..
            } => {
                let n = self.node(from);
                n.msgs_dropped += 1;
                n.bytes_dropped += bytes;
                self.edges.entry((from, to)).or_default().drops += 1;
            }
            TraceEvent::MsgKill {
                node,
                count,
                reason,
                ..
            } => {
                self.node(node).msgs_killed += count;
                *self.kills.entry(kill_reason_name(reason)).or_default() += count;
            }
            TraceEvent::MsgExpire {
                t_ns, node, count, ..
            } => {
                self.node(node).msgs_expired += count;
                self.node_window(node, t_ns).msgs_expired += count;
                self.global_window(t_ns).msgs_expired += count;
            }
            TraceEvent::MsgMixed {
                t_ns,
                node,
                from,
                staleness_s,
                ..
            } => {
                let n = self.node(node);
                n.msgs_mixed += 1;
                n.staleness_sum_s += staleness_s;
                let e = self.edges.entry((from, node)).or_default();
                e.mixed += 1;
                e.staleness_sum_s += staleness_s;
                let nw = self.node_window(node, t_ns);
                nw.msgs_mixed += 1;
                nw.staleness_sum_s += staleness_s;
                self.global_window(t_ns).msgs_mixed += 1;
                let bucket = STALENESS_BUCKETS_S
                    .iter()
                    .position(|&le| staleness_s <= le)
                    .unwrap_or(STALENESS_BUCKETS_S.len());
                self.staleness_counts[bucket] += 1;
                self.staleness_sum_s += staleness_s;
            }
            TraceEvent::Train {
                t_ns,
                node,
                compute_ns,
                ..
            } => {
                let n = self.node(node);
                n.trains += 1;
                n.compute_ns += compute_ns;
                self.node_window(node, t_ns).trains += 1;
                self.global_window(t_ns).trains += 1;
            }
            TraceEvent::AttackInject { t_ns, node, .. } => {
                self.node(node).attacks_injected += 1;
                self.node_window(node, t_ns).attacks_injected += 1;
            }
            TraceEvent::RobustClip {
                node,
                clipped,
                mass,
                ..
            } => {
                let n = self.node(node);
                n.robust_clipped += clipped;
                n.mass_clipped += mass;
            }
            TraceEvent::RoundResolve { .. } => {}
            TraceEvent::RoundAbandon { node, .. } => {
                self.node(node).rounds_abandoned += 1;
            }
            TraceEvent::RoundComplete { .. } => {
                self.run.rounds_completed += 1;
            }
            TraceEvent::Eval { t_ns, accuracy, .. } => {
                self.run.evals += 1;
                self.run.final_accuracy = accuracy;
                self.global_window(t_ns).accuracy = Some(accuracy);
            }
            TraceEvent::RepairRewire { edges_added, .. } => {
                self.run.repair_edges_added += edges_added;
            }
            TraceEvent::StrategyPairing {
                paired,
                fresh_resets,
                ignored,
                ..
            } => {
                self.run.pairing_paired += paired;
                self.run.pairing_fresh_resets += fresh_resets;
                self.run.pairing_ignored += ignored;
            }
            TraceEvent::ExecuteBatch {
                t_ns,
                width,
                queue_depth,
                propose_ns,
                execute_ns,
                commit_ns,
                ..
            } => {
                self.run.batches += 1;
                self.run.propose_wall_ns += propose_ns;
                self.run.execute_wall_ns += execute_ns;
                self.run.commit_wall_ns += commit_ns;
                let bucket = (32 - width.max(1).leading_zeros() - 1) as usize;
                if self.width_counts.len() <= bucket {
                    self.width_counts.resize(bucket + 1, 0);
                }
                self.width_counts[bucket] += 1;
                let gw = self.global_window(t_ns);
                gw.queue_depth_max = gw.queue_depth_max.max(queue_depth);
            }
        }
    }

    /// Whole-run facts folded so far.
    pub fn run_facts(&self) -> &RunFacts {
        &self.run
    }

    /// Per-node totals, ordered by node id.
    pub fn node_stats(&self) -> &BTreeMap<u32, NodeStats> {
        &self.nodes
    }

    /// Per-directed-edge totals, ordered by `(from, to)`.
    pub fn edge_stats(&self) -> &BTreeMap<(u32, u32), EdgeStats> {
        &self.edges
    }

    /// A flat, deterministic list of `(metric, value)` summary scalars —
    /// the rows `run_diff` turns into a delta table. Cluster-wide totals
    /// only; the per-node/per-edge breakdowns live in the exports.
    pub fn summary(&self) -> Vec<(&'static str, f64)> {
        let total =
            |f: fn(&NodeStats) -> u64| -> f64 { self.nodes.values().map(f).sum::<u64>() as f64 };
        let mixed: u64 = self.nodes.values().map(|n| n.msgs_mixed).sum();
        let staleness: f64 = self.nodes.values().map(|n| n.staleness_sum_s).sum();
        vec![
            ("virtual_time_s", self.run.t_end_ns as f64 * 1e-9),
            ("rounds_run", f64::from(self.run.rounds_run)),
            ("final_accuracy", self.run.final_accuracy),
            ("evals", self.run.evals as f64),
            ("bytes_sent", total(|n| n.bytes_sent)),
            ("messages_sent", total(|n| n.msgs_sent)),
            ("messages_dropped", total(|n| n.msgs_dropped)),
            ("messages_expired", total(|n| n.msgs_expired)),
            ("messages_killed", total(|n| n.msgs_killed)),
            ("messages_mixed", mixed as f64),
            (
                "mean_mix_staleness_s",
                if mixed == 0 {
                    0.0
                } else {
                    staleness / mixed as f64
                },
            ),
            ("trains", total(|n| n.trains)),
            ("compute_virtual_s", total(|n| n.compute_ns) * 1e-9),
            ("crashes", total(|n| n.crashes)),
            ("rejoins", total(|n| n.rejoins)),
            ("rounds_abandoned", total(|n| n.rounds_abandoned)),
            ("attacks_injected", total(|n| n.attacks_injected)),
            ("robust_clipped", total(|n| n.robust_clipped)),
            (
                "mass_clipped",
                self.nodes.values().map(|n| n.mass_clipped).sum(),
            ),
            ("repair_edges_added", self.run.repair_edges_added as f64),
            ("pairing_paired", self.run.pairing_paired as f64),
            ("pairing_fresh_resets", self.run.pairing_fresh_resets as f64),
            ("queue_depth_hwm", f64::from(self.run.queue_depth_hwm)),
        ]
    }

    /// The Prometheus text exposition of every aggregate: run gauges,
    /// per-node and per-edge counters, the phase wall-time split and the
    /// mix-staleness/batch-width histograms. Deterministic byte-for-byte
    /// for a deterministic stream (wall-time lines excepted — they carry
    /// the `ExecuteBatch` side channel).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut scalar = |name: &str, help: &str, kind: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        scalar(
            "jwins_run_virtual_time_seconds",
            "Final virtual time of the run.",
            "gauge",
            self.run.t_end_ns as f64 * 1e-9,
        );
        scalar(
            "jwins_run_rounds_completed",
            "Rounds completed cluster-wide.",
            "gauge",
            f64::from(self.run.rounds_run),
        );
        scalar(
            "jwins_run_final_accuracy",
            "Last evaluated mean test accuracy.",
            "gauge",
            self.run.final_accuracy,
        );
        scalar(
            "jwins_run_queue_depth_hwm",
            "Event-queue depth high-water mark.",
            "gauge",
            f64::from(self.run.queue_depth_hwm),
        );
        scalar(
            "jwins_repair_edges_added_total",
            "Detour edges added by topology repair.",
            "counter",
            self.run.repair_edges_added as f64,
        );

        out.push_str("# HELP jwins_phase_wall_seconds Host wall time per engine phase (nondeterministic side channel).\n");
        out.push_str("# TYPE jwins_phase_wall_seconds counter\n");
        for (phase, ns) in [
            ("propose", self.run.propose_wall_ns),
            ("execute", self.run.execute_wall_ns),
            ("commit", self.run.commit_wall_ns),
        ] {
            let _ = writeln!(
                out,
                "jwins_phase_wall_seconds{{phase=\"{phase}\"}} {}",
                ns as f64 * 1e-9
            );
        }

        let node_counter = |out: &mut String, name: &str, help: &str, f: fn(&NodeStats) -> f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (node, stats) in &self.nodes {
                let _ = writeln!(out, "{name}{{node=\"{node}\"}} {}", f(stats));
            }
        };
        node_counter(
            &mut out,
            "jwins_node_bytes_sent_total",
            "Bytes this node put on the wire.",
            |n| n.bytes_sent as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_messages_sent_total",
            "Messages this node put on the wire.",
            |n| n.msgs_sent as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_messages_dropped_total",
            "Messages lost at send time (loss model).",
            |n| n.msgs_dropped as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_messages_expired_total",
            "Messages TTL-expired or over-cap dropped at this node.",
            |n| n.msgs_expired as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_messages_killed_total",
            "Messages destroyed at this node by crash/rejoin/repair purges.",
            |n| n.msgs_killed as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_messages_mixed_total",
            "Messages this node mixed into its aggregate.",
            |n| n.msgs_mixed as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_train_rounds_total",
            "Training completions at this node.",
            |n| n.trains as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_compute_virtual_seconds_total",
            "Virtual compute seconds spent training at this node.",
            |n| n.compute_ns as f64 * 1e-9,
        );
        node_counter(
            &mut out,
            "jwins_node_crashes_total",
            "Crashes of this node.",
            |n| n.crashes as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_rejoins_total",
            "Rejoins of this node.",
            |n| n.rejoins as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_attacks_injected_total",
            "Byzantine perturbations this node injected into its messages.",
            |n| n.attacks_injected as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_robust_clipped_total",
            "Neighbour contributions the robust rule screened out here.",
            |n| n.robust_clipped as f64,
        );
        node_counter(
            &mut out,
            "jwins_node_robust_mass_clipped_total",
            "Mixing mass the robust rule moved to this node's self-weight.",
            |n| n.mass_clipped,
        );

        out.push_str("# HELP jwins_edge_bytes_total Bytes sent on the directed edge.\n");
        out.push_str("# TYPE jwins_edge_bytes_total counter\n");
        for (&(from, to), stats) in &self.edges {
            let _ = writeln!(
                out,
                "jwins_edge_bytes_total{{from=\"{from}\",to=\"{to}\"}} {}",
                stats.bytes
            );
        }
        out.push_str(
            "# HELP jwins_edge_mean_flight_seconds Mean delivery flight time on the edge.\n",
        );
        out.push_str("# TYPE jwins_edge_mean_flight_seconds gauge\n");
        for (&(from, to), stats) in &self.edges {
            if stats.msgs > 0 {
                let _ = writeln!(
                    out,
                    "jwins_edge_mean_flight_seconds{{from=\"{from}\",to=\"{to}\"}} {}",
                    stats.flight_ns_sum as f64 * 1e-9 / stats.msgs as f64
                );
            }
        }
        out.push_str(
            "# HELP jwins_edge_mean_mix_staleness_seconds Mean age of the edge's messages when mixed.\n",
        );
        out.push_str("# TYPE jwins_edge_mean_mix_staleness_seconds gauge\n");
        for (&(from, to), stats) in &self.edges {
            if stats.mixed > 0 {
                let _ = writeln!(
                    out,
                    "jwins_edge_mean_mix_staleness_seconds{{from=\"{from}\",to=\"{to}\"}} {}",
                    stats.staleness_sum_s / stats.mixed as f64
                );
            }
        }

        out.push_str("# HELP jwins_message_kills_total Messages destroyed by purges, by reason.\n");
        out.push_str("# TYPE jwins_message_kills_total counter\n");
        for (reason, count) in &self.kills {
            let _ = writeln!(
                out,
                "jwins_message_kills_total{{reason=\"{reason}\"}} {count}"
            );
        }

        out.push_str(
            "# HELP jwins_mix_staleness_seconds Age of neighbour information at mix time.\n",
        );
        out.push_str("# TYPE jwins_mix_staleness_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, &count) in self.staleness_counts.iter().enumerate() {
            cumulative += count;
            let le = STALENESS_BUCKETS_S
                .get(i)
                .map_or("+Inf".to_owned(), |b| format!("{b}"));
            let _ = writeln!(
                out,
                "jwins_mix_staleness_seconds_bucket{{le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "jwins_mix_staleness_seconds_sum {}",
            self.staleness_sum_s
        );
        let _ = writeln!(out, "jwins_mix_staleness_seconds_count {cumulative}");

        out.push_str(
            "# HELP jwins_execute_batch_width Parallel batch width (power-of-two buckets).\n",
        );
        out.push_str("# TYPE jwins_execute_batch_width histogram\n");
        let mut cumulative = 0u64;
        for (k, &count) in self.width_counts.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "jwins_execute_batch_width_bucket{{le=\"{}\"}} {cumulative}",
                (1u64 << (k + 1)) - 1
            );
        }
        let _ = writeln!(
            out,
            "jwins_execute_batch_width_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(out, "jwins_execute_batch_width_count {}", self.run.batches);
        out
    }

    /// The windowed time series as long-format CSV:
    /// `window_start_s,scope,id,metric,value`, rows ordered by window, then
    /// scope (`run` < `node` < `edge`), then id, then metric name.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("window_start_s,scope,id,metric,value\n");
        let window_s = self.window_ns as f64 * 1e-9;
        let windows: std::collections::BTreeSet<u64> = self
            .global_windows
            .keys()
            .copied()
            .chain(self.node_windows.keys().map(|&(_, w)| w))
            .chain(self.edge_windows.keys().map(|&(_, _, w)| w))
            .collect();
        for &w in &windows {
            let start = w as f64 * window_s;
            if let Some(g) = self.global_windows.get(&w) {
                let mut row = |metric: &str, value: f64| {
                    let _ = writeln!(out, "{start:.3},run,,{metric},{value}");
                };
                row("bytes_sent", g.bytes_sent as f64);
                row("messages_sent", g.msgs_sent as f64);
                row("trains", g.trains as f64);
                row("messages_mixed", g.msgs_mixed as f64);
                row("messages_expired", g.msgs_expired as f64);
                row("lifecycle_events", g.lifecycle_events as f64);
                row("queue_depth_max", f64::from(g.queue_depth_max));
                if let Some(acc) = g.accuracy {
                    row("accuracy", acc);
                }
            }
            for (&(node, nw), stats) in self.node_windows.range((0, w)..=(u32::MAX, u64::MAX)) {
                if nw != w {
                    continue;
                }
                let mut row = |metric: &str, value: f64| {
                    let _ = writeln!(out, "{start:.3},node,{node},{metric},{value}");
                };
                row("bytes_sent", stats.bytes_sent as f64);
                row("trains", stats.trains as f64);
                row("messages_mixed", stats.msgs_mixed as f64);
                if stats.msgs_mixed > 0 {
                    row(
                        "mean_mix_staleness_s",
                        stats.staleness_sum_s / stats.msgs_mixed as f64,
                    );
                }
                if stats.msgs_expired > 0 {
                    row("messages_expired", stats.msgs_expired as f64);
                }
                if stats.attacks_injected > 0 {
                    row("attacks_injected", stats.attacks_injected as f64);
                }
            }
            for (&(from, to, ew), &bytes) in &self.edge_windows {
                if ew != w {
                    continue;
                }
                let _ = writeln!(out, "{start:.3},edge,{from}->{to},bytes_sent,{bytes}");
            }
        }
        out
    }
}

/// A cloneable [`TraceSink`] folding every event into a shared
/// [`MetricsRegistry`]. Clones share the registry: attach one handle to a
/// run (`Trainer::builder().trace_sink(..)` or `TrainConfig::metrics`) and
/// keep another to read aggregates back — live (a controller polling
/// [`MetricsSink::summary`] mid-run) or after the run. When export paths
/// are configured the sink writes them on `flush` (the engine flushes every
/// sink at the end of the run).
#[derive(Debug, Clone)]
pub struct MetricsSink {
    registry: Arc<Mutex<MetricsRegistry>>,
    prometheus_path: Option<PathBuf>,
    csv_path: Option<PathBuf>,
}

impl MetricsSink {
    /// A file-free sink aggregating over `window_s`-second windows.
    pub fn new(window_s: f64) -> Self {
        Self {
            registry: Arc::new(Mutex::new(MetricsRegistry::new(window_s))),
            prometheus_path: None,
            csv_path: None,
        }
    }

    /// Builds the sink a configuration asks for: `None` when no export
    /// path is set. Export files are created (truncated) eagerly so an
    /// unwritable path surfaces at build time, not at the end of a long
    /// run; the final contents are written on `flush`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an export path cannot be created.
    pub fn from_config(config: &MetricsConfig) -> std::io::Result<Option<Self>> {
        if config.is_noop() {
            return Ok(None);
        }
        let mut sink = Self::new(config.window_s);
        if let Some(path) = &config.prometheus_path {
            std::fs::File::create(path)?;
            sink.prometheus_path = Some(PathBuf::from(path));
        }
        if let Some(path) = &config.csv_path {
            std::fs::File::create(path)?;
            sink.csv_path = Some(PathBuf::from(path));
        }
        Ok(Some(sink))
    }

    /// A snapshot of the shared registry.
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.lock().clone()
    }

    /// The current summary scalars (see [`MetricsRegistry::summary`]).
    pub fn summary(&self) -> Vec<(&'static str, f64)> {
        self.registry.lock().summary()
    }

    /// The current Prometheus exposition.
    pub fn to_prometheus(&self) -> String {
        self.registry.lock().to_prometheus()
    }

    /// The current CSV time series.
    pub fn to_csv(&self) -> String {
        self.registry.lock().to_csv()
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, event: &TraceEvent) {
        self.registry.lock().observe(event);
    }

    fn flush(&mut self) {
        // Telemetry is best-effort past the eager create: a disk filling
        // up mid-run must not panic the flush path.
        let registry = self.registry.lock();
        if let Some(path) = &self.prometheus_path {
            let _ = std::fs::write(path, registry.to_prometheus());
        }
        if let Some(path) = &self.csv_path {
            let _ = std::fs::write(path, registry.to_csv());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jwins_trace::BatchClass;

    fn sample_stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                nodes: 3,
                rounds: 2,
                seed: 7,
            },
            TraceEvent::MsgSend {
                t_ns: 100_000_000,
                from: 0,
                to: 1,
                round: 0,
                bytes: 1000,
                arrives_ns: 300_000_000,
            },
            TraceEvent::MsgSend {
                t_ns: 1_200_000_000,
                from: 0,
                to: 1,
                round: 1,
                bytes: 1000,
                arrives_ns: 1_400_000_000,
            },
            TraceEvent::MsgDrop {
                t_ns: 100_000_000,
                from: 1,
                to: 2,
                round: 0,
                bytes: 500,
            },
            TraceEvent::Train {
                t_ns: 1_000_000_000,
                node: 1,
                round: 0,
                compute_ns: 1_000_000_000,
            },
            TraceEvent::MsgMixed {
                t_ns: 1_500_000_000,
                node: 1,
                from: 0,
                round: 0,
                sent_round: 0,
                staleness_s: 1.2,
            },
            TraceEvent::MsgExpire {
                t_ns: 1_500_000_000,
                node: 1,
                round: 0,
                count: 2,
            },
            TraceEvent::AttackInject {
                t_ns: 1_000_000_000,
                node: 2,
                round: 0,
                kind: jwins_trace::AttackKind::SignFlip,
            },
            TraceEvent::RobustClip {
                t_ns: 1_500_000_000,
                node: 1,
                round: 0,
                clipped: 3,
                mass: 0.25,
            },
            TraceEvent::ExecuteBatch {
                t_ns: 1_500_000_000,
                class: BatchClass::Mix,
                round: 0,
                width: 3,
                queue_depth: 9,
                shard: 0,
                wall_start_ns: 5,
                propose_ns: 10,
                execute_ns: 20,
                commit_ns: 30,
            },
            TraceEvent::Eval {
                t_ns: 1_600_000_000,
                round: 0,
                checkpoint: false,
                accuracy: 0.5,
            },
            TraceEvent::RunEnd {
                t_ns: 2_000_000_000,
                rounds_run: 2,
                queue_depth_hwm: 12,
            },
        ]
    }

    #[test]
    fn totals_fold_per_node_and_per_edge() {
        let r = MetricsRegistry::from_events(1.0, &sample_stream());
        assert_eq!(r.node_stats()[&0].bytes_sent, 2000);
        assert_eq!(r.node_stats()[&0].msgs_sent, 2);
        assert_eq!(r.node_stats()[&1].msgs_dropped, 1);
        assert_eq!(r.node_stats()[&1].trains, 1);
        assert_eq!(r.node_stats()[&1].msgs_mixed, 1);
        assert_eq!(r.node_stats()[&1].msgs_expired, 2);
        assert_eq!(r.node_stats()[&2].attacks_injected, 1);
        assert_eq!(r.node_stats()[&1].robust_clipped, 3);
        assert_eq!(r.node_stats()[&1].mass_clipped, 0.25);
        let edge = &r.edge_stats()[&(0, 1)];
        assert_eq!(edge.msgs, 2);
        assert_eq!(edge.bytes, 2000);
        assert_eq!(edge.flight_ns_sum, 400_000_000);
        assert_eq!(edge.mixed, 1);
        assert_eq!(r.run_facts().rounds_run, 2);
        assert_eq!(r.run_facts().batches, 1);
    }

    #[test]
    fn windows_split_on_the_virtual_clock() {
        let r = MetricsRegistry::from_events(1.0, &sample_stream());
        // The two sends land in windows 0 and 1.
        let csv = r.to_csv();
        assert!(csv.starts_with("window_start_s,scope,id,metric,value\n"));
        assert!(csv.contains("0.000,node,0,bytes_sent,1000"), "{csv}");
        assert!(csv.contains("1.000,node,0,bytes_sent,1000"), "{csv}");
        assert!(csv.contains("0.000,edge,0->1,bytes_sent,1000"), "{csv}");
        assert!(csv.contains("1.000,run,,accuracy,0.5"), "{csv}");
        assert!(csv.contains("1.000,node,2,attacks_injected,1"), "{csv}");
    }

    #[test]
    fn prometheus_export_is_well_formed_and_deterministic() {
        let r = MetricsRegistry::from_events(1.0, &sample_stream());
        let text = r.to_prometheus();
        assert_eq!(text, r.to_prometheus(), "export is deterministic");
        assert!(text.contains("jwins_node_bytes_sent_total{node=\"0\"} 2000"));
        assert!(text.contains("jwins_edge_bytes_total{from=\"0\",to=\"1\"} 2000"));
        assert!(text.contains("jwins_run_final_accuracy 0.5"));
        assert!(text.contains("jwins_mix_staleness_seconds_count 1"));
        assert!(text.contains("jwins_node_attacks_injected_total{node=\"2\"} 1"));
        assert!(text.contains("jwins_node_robust_clipped_total{node=\"1\"} 3"));
        assert!(text.contains("jwins_node_robust_mass_clipped_total{node=\"1\"} 0.25"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    fn summary_names_are_stable_and_finite() {
        let r = MetricsRegistry::from_events(1.0, &sample_stream());
        let summary = r.summary();
        let names: Vec<&str> = summary.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"bytes_sent"));
        assert!(names.contains(&"mean_mix_staleness_s"));
        for (name, value) in &summary {
            assert!(value.is_finite(), "{name} is not finite");
        }
        // An empty registry's summary has the same shape (no NaN division).
        let empty = MetricsRegistry::new(1.0);
        assert_eq!(empty.summary().len(), summary.len());
        for (name, value) in empty.summary() {
            assert!(value.is_finite(), "{name} is not finite on empty");
        }
    }

    #[test]
    fn sink_clones_share_the_registry_and_flush_writes_exports() {
        let dir = std::env::temp_dir().join(format!("jwins-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = MetricsConfig {
            prometheus_path: Some(dir.join("run.prom").to_string_lossy().into_owned()),
            csv_path: Some(dir.join("run.csv").to_string_lossy().into_owned()),
            window_s: 1.0,
        };
        let sink = MetricsSink::from_config(&config).unwrap().expect("active");
        let mut attached = sink.clone();
        for event in sample_stream() {
            attached.record(&event);
        }
        attached.flush();
        assert_eq!(sink.registry().run_facts().rounds_run, 2);
        let prom = std::fs::read_to_string(dir.join("run.prom")).unwrap();
        assert_eq!(prom, sink.to_prometheus());
        let csv = std::fs::read_to_string(dir.join("run.csv")).unwrap();
        assert_eq!(csv, sink.to_csv());
    }

    #[test]
    fn noop_config_builds_no_sink_and_bad_paths_fail_eagerly() {
        assert!(MetricsSink::from_config(&MetricsConfig::default())
            .unwrap()
            .is_none());
        let bad = MetricsConfig {
            prometheus_path: Some("/nonexistent-dir-for-sure/run.prom".into()),
            ..MetricsConfig::default()
        };
        assert!(MetricsSink::from_config(&bad).is_err());
        assert!(MetricsConfig::default().validate().is_ok());
        let bad_window = MetricsConfig {
            window_s: 0.0,
            ..MetricsConfig::default()
        };
        assert!(bad_window.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_serde() {
        let config = MetricsConfig {
            prometheus_path: Some("/tmp/run.prom".into()),
            csv_path: None,
            window_s: 0.5,
        };
        let back: MetricsConfig = serde::json::from_str(&serde::json::to_string(&config)).unwrap();
        assert_eq!(back, config);
        // Configs predating the metrics layer parse as the default.
        let old: MetricsConfig = serde::json::from_str(r#"{"window_s":1.0}"#).unwrap();
        assert_eq!(old, MetricsConfig::default());
    }
}
