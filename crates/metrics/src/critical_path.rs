//! The critical-path analyzer: what bounded a run's virtual
//! time-to-accuracy.
//!
//! A trace is a causal DAG: a node's `Train` feeds its `MsgSend`s, a send's
//! arrival feeds the receiver's `MsgMixed`, a mix feeds the node's next
//! `Train`, and the last passer's mix completes the round that an `Eval`
//! measures. [`CriticalPath::analyze`] walks that DAG *backward* from a
//! terminal event (the first evaluation reaching a target accuracy, else
//! the last evaluation, else run end) and reconstructs the single chain of
//! waiting that bounds the terminal's virtual time `T`.
//!
//! The chain is returned as [`Segment`]s that tile `[0, T]` exactly — their
//! durations sum to `T` by construction — so the per-owner
//! [`BlameShare`]s ("41% of the bound is node 3 computing, 22% is the 0→1
//! link in flight") always sum to 1. Everything here reads only the
//! deterministic event fields, so the rendered report is byte-identical
//! across worker-thread counts for the same seed.

use jwins_trace::TraceEvent;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Why no critical path could be reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The trace has no events at all.
    EmptyTrace,
    /// No terminal with a positive virtual time exists (no `Eval`, and no
    /// `RunEnd` past t=0), so there is no span to explain.
    NoSpan,
    /// The trace has a span but no per-node activity (`Train`/`MsgMixed`)
    /// to anchor the walk — e.g. a header-only or bulk-synchronous replay.
    NoActivity,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::EmptyTrace => write!(f, "trace is empty"),
            PathError::NoSpan => write!(f, "trace has no terminal past t=0 (no Eval or RunEnd)"),
            PathError::NoActivity => {
                write!(f, "trace has no Train/MsgMixed activity to anchor the walk")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// What a critical-path segment's owner was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentKind {
    /// A node running its τ local SGD steps.
    Compute,
    /// A node past training but not yet unblocked: serializing messages
    /// out over its uplink, or idling between rounds.
    Uplink,
    /// A message in flight on a directed edge (latency + bytes/bandwidth).
    Link,
    /// A delivered message sitting in the receiver's mailbox until the
    /// mix that consumed it (includes any pre-first-event lead-in).
    Wait,
    /// The owner was crashed.
    Down,
}

impl SegmentKind {
    /// Fixed-width lowercase name used by [`CriticalPath::render`].
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Uplink => "uplink",
            SegmentKind::Link => "link",
            SegmentKind::Wait => "wait",
            SegmentKind::Down => "down",
        }
    }
}

/// One contiguous span of the critical path on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// What the owner was doing.
    pub kind: SegmentKind,
    /// Owning node, for node-scoped kinds.
    pub node: Option<u32>,
    /// Owning directed edge, for [`SegmentKind::Link`].
    pub edge: Option<(u32, u32)>,
    /// Segment start (virtual ns).
    pub start_ns: u64,
    /// Segment end (virtual ns).
    pub end_ns: u64,
}

impl Segment {
    /// The segment's span on the virtual clock.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// The owner label used for blame grouping (`node 3` / `edge 0->1`).
    pub fn owner(&self) -> String {
        match (self.node, self.edge) {
            (_, Some((from, to))) => format!("edge {from}->{to}"),
            (Some(node), None) => format!("node {node}"),
            (None, None) => "run".to_owned(),
        }
    }
}

/// A `(kind, owner)` group's share of the time-to-terminal bound.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameShare {
    /// What the owner was doing.
    pub kind: SegmentKind,
    /// `node N` or `edge A->B`.
    pub owner: String,
    /// Total virtual ns this group holds on the path.
    pub duration_ns: u64,
    /// `duration_ns / bound_ns`; all shares sum to 1.
    pub share: f64,
}

/// The reconstructed chain bounding a run's virtual time-to-terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The bound being explained: the terminal's virtual time (ns).
    pub bound_ns: u64,
    /// Human description of the terminal event.
    pub terminal: String,
    /// The accuracy target the terminal was selected against, if any.
    pub target: Option<f64>,
    /// Whether some evaluation reached the target (when one was given);
    /// `false` means the path explains the *last* evaluation instead.
    pub target_reached: bool,
    /// Path segments, earliest first, tiling `[0, bound_ns]` exactly.
    pub segments: Vec<Segment>,
    /// Blame per `(kind, owner)`, largest share first; shares sum to 1.
    pub blame: Vec<BlameShare>,
    /// The cycle guard fired on a degenerate trace (e.g. zero-latency
    /// mutual links): the unexplained head of the span was folded into a
    /// leading wait segment.
    pub truncated: bool,
}

/// One training completion, preprocessed for the backward walk.
#[derive(Debug, Clone, Copy)]
struct TrainRec {
    end_ns: u64,
    compute_ns: u64,
}

/// One mix, joined with its originating send (FIFO per `(from, to,
/// sent_round)`; a mix with no recorded send degrades to a zero-length
/// link so the walk can still cross to the sender).
#[derive(Debug, Clone, Copy)]
struct MixRec {
    t_ns: u64,
    from: u32,
    send_ns: u64,
    arrives_ns: u64,
}

impl CriticalPath {
    /// Reconstructs the critical path of a recorded stream.
    ///
    /// With a `target`, the terminal is the first `Eval` whose accuracy
    /// reaches it (falling back to the last `Eval` if never reached —
    /// check [`CriticalPath::target_reached`]); without one, the last
    /// `Eval`, else `RunEnd`.
    ///
    /// # Errors
    ///
    /// See [`PathError`] — empty trace, zero span, or no node activity.
    pub fn analyze(events: &[TraceEvent], target: Option<f64>) -> Result<Self, PathError> {
        if events.is_empty() {
            return Err(PathError::EmptyTrace);
        }

        // --- preprocess: per-node trains, joined mixes, down intervals ---
        let mut trains: BTreeMap<u32, Vec<TrainRec>> = BTreeMap::new();
        let mut mixes: BTreeMap<u32, Vec<MixRec>> = BTreeMap::new();
        let mut sends: BTreeMap<(u32, u32, u32), VecDeque<(u64, u64)>> = BTreeMap::new();
        let mut downs: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        for event in events {
            match *event {
                TraceEvent::Train {
                    t_ns,
                    node,
                    compute_ns,
                    ..
                } => trains.entry(node).or_default().push(TrainRec {
                    end_ns: t_ns,
                    compute_ns,
                }),
                TraceEvent::MsgSend {
                    t_ns,
                    from,
                    to,
                    round,
                    arrives_ns,
                    ..
                } => sends
                    .entry((from, to, round))
                    .or_default()
                    .push_back((t_ns, arrives_ns)),
                TraceEvent::MsgMixed {
                    t_ns,
                    node,
                    from,
                    sent_round,
                    ..
                } => {
                    let (send_ns, arrives_ns) = sends
                        .get_mut(&(from, node, sent_round))
                        .and_then(VecDeque::pop_front)
                        .unwrap_or((t_ns, t_ns));
                    mixes.entry(node).or_default().push(MixRec {
                        t_ns,
                        from,
                        send_ns,
                        arrives_ns,
                    });
                }
                TraceEvent::NodeCrash { t_ns, node, .. } => {
                    downs.entry(node).or_default().push((t_ns, u64::MAX));
                }
                TraceEvent::NodeRejoin { t_ns, node, .. } => {
                    if let Some((_, end)) = downs
                        .entry(node)
                        .or_default()
                        .iter_mut()
                        .rev()
                        .find(|(_, end)| *end == u64::MAX)
                    {
                        *end = t_ns;
                    }
                }
                _ => {}
            }
        }
        for recs in trains.values_mut() {
            recs.sort_by_key(|r| r.end_ns);
        }
        for recs in mixes.values_mut() {
            recs.sort_by_key(|r| r.t_ns);
        }

        // --- terminal selection ---
        let mut terminal: Option<(usize, u64, String)> = None;
        let mut target_reached = false;
        for (index, event) in events.iter().enumerate() {
            if let TraceEvent::Eval {
                t_ns,
                round,
                accuracy,
                ..
            } = *event
            {
                let describe = format!("Eval at round {round}, accuracy {accuracy:.4}");
                match target {
                    Some(want) if accuracy >= want => {
                        if !target_reached {
                            terminal = Some((index, t_ns, describe));
                            target_reached = true;
                        }
                    }
                    _ => {
                        if !target_reached {
                            terminal = Some((index, t_ns, describe));
                        }
                    }
                }
            }
        }
        if terminal.is_none() {
            terminal = events.iter().enumerate().rev().find_map(|(index, event)| {
                if let TraceEvent::RunEnd {
                    t_ns, rounds_run, ..
                } = *event
                {
                    Some((index, t_ns, format!("RunEnd after {rounds_run} rounds")))
                } else {
                    None
                }
            });
        }
        let (terminal_index, bound_ns, terminal) = terminal.ok_or(PathError::NoSpan)?;
        if bound_ns == 0 {
            return Err(PathError::NoSpan);
        }

        // --- anchor: the node whose activity the terminal saw last ---
        let start_node = events[..=terminal_index]
            .iter()
            .rev()
            .find_map(|e| match *e {
                TraceEvent::Train { node, .. } | TraceEvent::MsgMixed { node, .. } => Some(node),
                _ => None,
            })
            .ok_or(PathError::NoActivity)?;

        // --- backward walk ---
        let mut segments: Vec<Segment> = Vec::new();
        let push = |segments: &mut Vec<Segment>,
                    kind: SegmentKind,
                    node: Option<u32>,
                    edge: Option<(u32, u32)>,
                    start_ns: u64,
                    end_ns: u64| {
            if start_ns < end_ns {
                segments.push(Segment {
                    kind,
                    node,
                    edge,
                    start_ns,
                    end_ns,
                });
            }
        };
        // A node's post-train gap is uplink time unless it overlaps a
        // crash window, which is carved out as `Down`.
        let carve_gap =
            |segments: &mut Vec<Segment>, node: u32, a: u64, b: u64, downs: &[(u64, u64)]| {
                let mut pos = a;
                for &(down_start, down_end) in downs {
                    let (start, end) = (down_start.max(pos), down_end.min(b));
                    if start >= end {
                        continue;
                    }
                    if pos < start {
                        segments.push(Segment {
                            kind: SegmentKind::Uplink,
                            node: Some(node),
                            edge: None,
                            start_ns: pos,
                            end_ns: start,
                        });
                    }
                    segments.push(Segment {
                        kind: SegmentKind::Down,
                        node: Some(node),
                        edge: None,
                        start_ns: start,
                        end_ns: end,
                    });
                    pos = end;
                }
                if pos < b {
                    segments.push(Segment {
                        kind: SegmentKind::Uplink,
                        node: Some(node),
                        edge: None,
                        start_ns: pos,
                        end_ns: b,
                    });
                }
            };

        // Per-node cursor into `trains`: only indices below it are still
        // claimable, so a zero-compute train can never be taken twice.
        let mut train_cursor: BTreeMap<u32, usize> = BTreeMap::new();
        let mut visited: BTreeSet<(u32, u64)> = BTreeSet::new();
        let mut truncated = false;
        let (mut node, mut t) = (start_node, bound_ns);
        let step_cap = events.len() * 4 + 64;
        let mut steps = 0usize;
        while t > 0 {
            steps += 1;
            if steps > step_cap || !visited.insert((node, t)) {
                truncated = true;
                push(&mut segments, SegmentKind::Wait, Some(node), None, 0, t);
                break;
            }

            // Candidate A: the node's latest training completion at or
            // before the cursor (bounded by its claim cursor).
            let node_trains = trains.get(&node).map_or(&[][..], Vec::as_slice);
            let claimable = &node_trains[..*train_cursor.entry(node).or_insert(node_trains.len())];
            let train_index = claimable.partition_point(|r| r.end_ns <= t).checked_sub(1);
            let train_end = train_index.map(|i| claimable[i].end_ns);

            // Candidate B: the gating input of the node's latest mix at or
            // before the cursor — among same-time mixes, the one whose
            // message arrived last (deterministic tie-break on the tuple).
            let gating_mix = mixes.get(&node).and_then(|recs| {
                let upto = recs.partition_point(|r| r.t_ns <= t);
                let last_t = recs[..upto].last()?.t_ns;
                recs[..upto]
                    .iter()
                    .rev()
                    .take_while(|r| r.t_ns == last_t)
                    .max_by_key(|r| (r.arrives_ns, r.from, r.send_ns))
                    .copied()
            });

            // The binding dependency is whichever input became ready last:
            // a message arriving after the node's own training end blocks
            // progress; otherwise (ties included) the node's own compute
            // does.
            let message_binds =
                gating_mix.is_some_and(|mix| train_end.is_none_or(|end| mix.arrives_ns > end));
            match (gating_mix, train_end) {
                (Some(mix), _) if message_binds => {
                    push(
                        &mut segments,
                        SegmentKind::Wait,
                        Some(node),
                        None,
                        mix.arrives_ns.min(t),
                        t,
                    );
                    push(
                        &mut segments,
                        SegmentKind::Link,
                        None,
                        Some((mix.from, node)),
                        mix.send_ns.min(t),
                        mix.arrives_ns.min(t),
                    );
                    (node, t) = (mix.from, mix.send_ns.min(t));
                }
                (_, Some(end)) => {
                    let index = train_index.expect("train_end implies an index");
                    let rec = claimable[index];
                    train_cursor.insert(node, index);
                    carve_gap(
                        &mut segments,
                        node,
                        end,
                        t,
                        downs.get(&node).map_or(&[][..], Vec::as_slice),
                    );
                    let start = end.saturating_sub(rec.compute_ns);
                    push(
                        &mut segments,
                        SegmentKind::Compute,
                        Some(node),
                        None,
                        start,
                        end,
                    );
                    t = start;
                }
                // Nothing earlier at this node: the head of the span is
                // scheduling lead-in, owned by the node we stopped at.
                // (`(Some(_), None)` cannot reach here — with no train,
                // `message_binds` is always true — but it folds into the
                // same terminal wait if it ever did.)
                _ => {
                    push(&mut segments, SegmentKind::Wait, Some(node), None, 0, t);
                    t = 0;
                }
            }
        }

        segments.sort_by_key(|s| (s.start_ns, s.end_ns));

        // --- blame: group by (kind, owner); shares sum to 1 by tiling ---
        let mut groups: BTreeMap<(SegmentKind, String), u64> = BTreeMap::new();
        for segment in &segments {
            *groups.entry((segment.kind, segment.owner())).or_default() += segment.duration_ns();
        }
        let mut blame: Vec<BlameShare> = groups
            .into_iter()
            .map(|((kind, owner), duration_ns)| BlameShare {
                kind,
                owner,
                duration_ns,
                share: duration_ns as f64 / bound_ns as f64,
            })
            .collect();
        blame.sort_by(|a, b| {
            b.duration_ns
                .cmp(&a.duration_ns)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.owner.cmp(&b.owner))
        });

        Ok(CriticalPath {
            bound_ns,
            terminal,
            target,
            target_reached,
            segments,
            blame,
            truncated,
        })
    }

    /// Sum of all segment durations; equals [`CriticalPath::bound_ns`]
    /// when the tiling is intact (pinned by tests).
    pub fn total_segment_ns(&self) -> u64 {
        self.segments.iter().map(Segment::duration_ns).sum()
    }

    /// A fixed-precision text report: the bound, the chronological
    /// segment chain, and the blame table. Built from deterministic event
    /// fields only, so it is byte-identical across worker-thread counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let secs = |ns: u64| ns as f64 * 1e-9;
        let _ = writeln!(
            out,
            "critical path: {:.6}s of virtual time to {}",
            secs(self.bound_ns),
            self.terminal
        );
        if let Some(target) = self.target {
            let _ = writeln!(
                out,
                "target accuracy {:.4}: {}",
                target,
                if self.target_reached {
                    "reached"
                } else {
                    "NOT reached (explaining the last evaluation instead)"
                }
            );
        }
        if self.truncated {
            out.push_str("note: degenerate causality detected; head folded into a wait\n");
        }
        out.push_str("segments (earliest first):\n");
        for segment in &self.segments {
            let _ = writeln!(
                out,
                "  [{:>12.6}s .. {:>12.6}s]  {:<7}  {:<12}  {:.6}s",
                secs(segment.start_ns),
                secs(segment.end_ns),
                segment.kind.name(),
                segment.owner(),
                secs(segment.duration_ns()),
            );
        }
        out.push_str("blame (share of the bound):\n");
        for share in &self.blame {
            let _ = writeln!(
                out,
                "  {:>6.2}%  {:>12.6}s  {:<7}  {}",
                share.share * 100.0,
                secs(share.duration_ns),
                share.kind.name(),
                share.owner,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_trace() -> Vec<TraceEvent> {
        // node 0 trains [0, 1s], sends at 1s arriving 2s; node 1 trains
        // [0, 0.5s], mixes the message at 2s; eval at 2.5s.
        vec![
            TraceEvent::RunStart {
                nodes: 2,
                rounds: 1,
                seed: 1,
            },
            TraceEvent::Train {
                t_ns: 500_000_000,
                node: 1,
                round: 0,
                compute_ns: 500_000_000,
            },
            TraceEvent::Train {
                t_ns: 1_000_000_000,
                node: 0,
                round: 0,
                compute_ns: 1_000_000_000,
            },
            TraceEvent::MsgSend {
                t_ns: 1_000_000_000,
                from: 0,
                to: 1,
                round: 0,
                bytes: 4096,
                arrives_ns: 2_000_000_000,
            },
            TraceEvent::MsgMixed {
                t_ns: 2_000_000_000,
                node: 1,
                from: 0,
                round: 0,
                sent_round: 0,
                staleness_s: 1.0,
            },
            TraceEvent::Eval {
                t_ns: 2_500_000_000,
                round: 0,
                checkpoint: false,
                accuracy: 0.9,
            },
            TraceEvent::RunEnd {
                t_ns: 2_500_000_000,
                rounds_run: 1,
                queue_depth_hwm: 4,
            },
        ]
    }

    #[test]
    fn chain_tiles_the_span_and_blames_sum_to_one() {
        let path = CriticalPath::analyze(&chain_trace(), None).unwrap();
        assert_eq!(path.bound_ns, 2_500_000_000);
        assert_eq!(path.total_segment_ns(), path.bound_ns);
        assert!(!path.truncated);
        let share_sum: f64 = path.blame.iter().map(|b| b.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        // The chain is: node 0 computes, the 0->1 link flies, node 1 waits
        // for its mix to fire at 2s, eval at 2.5s.
        let kinds: Vec<(SegmentKind, String)> =
            path.segments.iter().map(|s| (s.kind, s.owner())).collect();
        assert_eq!(
            kinds,
            vec![
                (SegmentKind::Compute, "node 0".to_owned()),
                (SegmentKind::Link, "edge 0->1".to_owned()),
                (SegmentKind::Wait, "node 1".to_owned()),
            ]
        );
        // Blame is sorted by descending duration.
        assert!(path
            .blame
            .windows(2)
            .all(|w| w[0].duration_ns >= w[1].duration_ns));
        // Rendering is a pure function of the path.
        assert_eq!(path.render(), path.render());
        assert!(path.render().contains("critical path: 2.500000s"));
    }

    #[test]
    fn target_selects_the_first_reaching_eval() {
        let mut events = chain_trace();
        events.insert(
            5,
            TraceEvent::Eval {
                t_ns: 2_200_000_000,
                round: 0,
                checkpoint: true,
                accuracy: 0.5,
            },
        );
        let path = CriticalPath::analyze(&events, Some(0.6)).unwrap();
        assert!(path.target_reached);
        assert_eq!(path.bound_ns, 2_500_000_000, "first eval >= 0.6 is at 2.5s");
        let early = CriticalPath::analyze(&events, Some(0.4)).unwrap();
        assert!(early.target_reached);
        assert_eq!(early.bound_ns, 2_200_000_000);
        let unreached = CriticalPath::analyze(&events, Some(0.99)).unwrap();
        assert!(!unreached.target_reached);
        assert_eq!(unreached.bound_ns, 2_500_000_000, "falls back to last eval");
        assert!(unreached.render().contains("NOT reached"));
    }

    #[test]
    fn crash_windows_are_carved_out_of_uplink_gaps() {
        let events = vec![
            TraceEvent::Train {
                t_ns: 1_000_000_000,
                node: 0,
                round: 0,
                compute_ns: 1_000_000_000,
            },
            TraceEvent::NodeCrash {
                t_ns: 2_000_000_000,
                node: 0,
                epoch: 1,
                permanent: false,
            },
            TraceEvent::NodeRejoin {
                t_ns: 3_000_000_000,
                node: 0,
                epoch: 2,
                resync_from: None,
            },
            TraceEvent::Train {
                t_ns: 5_000_000_000,
                node: 0,
                round: 1,
                compute_ns: 1_000_000_000,
            },
            TraceEvent::RunEnd {
                t_ns: 5_000_000_000,
                rounds_run: 2,
                queue_depth_hwm: 2,
            },
        ];
        let path = CriticalPath::analyze(&events, None).unwrap();
        assert_eq!(path.total_segment_ns(), path.bound_ns);
        let down: Vec<&Segment> = path
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Down)
            .collect();
        assert_eq!(down.len(), 1);
        assert_eq!(
            (down[0].start_ns, down[0].end_ns),
            (2_000_000_000, 3_000_000_000)
        );
        let down_blame = path
            .blame
            .iter()
            .find(|b| b.kind == SegmentKind::Down)
            .unwrap();
        assert!((down_blame.share - 0.2).abs() < 1e-9);
    }

    #[test]
    fn degenerate_mutual_mixes_trip_the_cycle_guard() {
        // Two unmatched zero-length mixes pointing at each other at the
        // same instant: the walk must terminate with a folded wait, not
        // hang, and still tile the span.
        let events = vec![
            TraceEvent::MsgMixed {
                t_ns: 1_000_000_000,
                node: 0,
                from: 1,
                round: 0,
                sent_round: 0,
                staleness_s: 0.0,
            },
            TraceEvent::MsgMixed {
                t_ns: 1_000_000_000,
                node: 1,
                from: 0,
                round: 0,
                sent_round: 0,
                staleness_s: 0.0,
            },
            TraceEvent::RunEnd {
                t_ns: 1_000_000_000,
                rounds_run: 1,
                queue_depth_hwm: 1,
            },
        ];
        let path = CriticalPath::analyze(&events, None).unwrap();
        assert!(path.truncated);
        assert_eq!(path.total_segment_ns(), path.bound_ns);
        assert!(path.render().contains("degenerate causality"));
    }

    #[test]
    fn errors_cover_empty_spanless_and_activityless_traces() {
        assert_eq!(CriticalPath::analyze(&[], None), Err(PathError::EmptyTrace));
        let spanless = vec![TraceEvent::RunStart {
            nodes: 1,
            rounds: 0,
            seed: 0,
        }];
        assert_eq!(
            CriticalPath::analyze(&spanless, None),
            Err(PathError::NoSpan)
        );
        let activityless = vec![
            TraceEvent::RunStart {
                nodes: 1,
                rounds: 0,
                seed: 0,
            },
            TraceEvent::RunEnd {
                t_ns: 5,
                rounds_run: 0,
                queue_depth_hwm: 0,
            },
        ];
        assert_eq!(
            CriticalPath::analyze(&activityless, None),
            Err(PathError::NoActivity)
        );
    }
}
