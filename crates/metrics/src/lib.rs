//! Turning the trace stream into answers.
//!
//! `jwins_trace` records *what happened*; this crate answers the two
//! questions the raw stream cannot: **where did the time and bytes go**
//! (the [`MetricsRegistry`] — windowed per-node and per-edge series,
//! exported as Prometheus text and CSV) and **what bounded the result**
//! (the [`CriticalPath`] analyzer — the causal chain of node and link
//! events behind a run's virtual time-to-accuracy, with per-node/per-edge
//! blame shares). The [`diff`] module compares two runs structurally so a
//! determinism break or bench regression arrives with its first divergent
//! event attached (`run_diff` bin in `jwins_bench`).
//!
//! Everything here consumes [`jwins_trace::TraceEvent`]s — live through a
//! [`MetricsSink`] attached to a run (via `TrainConfig::metrics` or
//! `Trainer::builder().trace_sink(..)`), or post hoc from a recorded JSONL
//! trace (`jwins_trace::read_jsonl`). Like every sink, the metrics layer is
//! purely observational: attaching it changes no bit of any run output
//! (`tests/metrics_layer.rs` pins this with the trace-determinism harness).

#![warn(missing_docs)]

mod critical_path;
pub mod diff;
mod registry;

pub use critical_path::{BlameShare, CriticalPath, PathError, Segment, SegmentKind};
pub use registry::{MetricsConfig, MetricsRegistry, MetricsSink, DEFAULT_WINDOW_S};
