//! CI bench-regression gate.
//!
//! Compares a PR's `BENCH_pr.json` (written by the smoke benches via
//! `JWINS_BENCH_JSON`) against the checked-in `BENCH_baseline.json` and
//! exits non-zero when any case's wall-time exceeds `max_ratio` × its
//! baseline (default 2.0). Baseline cases missing from the PR report fail
//! too — a bench that silently stopped running is a regression. New cases
//! only present in the PR report are listed but never fail the gate; they
//! become binding once added to the baseline.
//!
//! ```sh
//! cargo run -p jwins_bench --bin bench_gate -- BENCH_baseline.json BENCH_pr.json [max_ratio]
//! ```

use jwins_bench::report::load_cases;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <pr.json> [max_ratio]");
        return ExitCode::FAILURE;
    }
    let max_ratio: f64 = args
        .get(3)
        .map(|s| s.parse().expect("max_ratio must be a number"))
        .unwrap_or(2.0);
    let baseline = match load_cases(Path::new(&args[1])) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pr = match load_cases(Path::new(&args[2])) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("pr report: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<42} {:>10} {:>10} {:>7}  verdict (gate: {max_ratio:.1}x)",
        "bench/case", "base s", "pr s", "ratio"
    );
    let mut failures = Vec::new();
    for base in &baseline {
        let key = format!("{}/{}", base.bench, base.case);
        match pr
            .iter()
            .find(|c| c.bench == base.bench && c.case == base.case)
        {
            Some(case) => {
                let ratio = case.wall_s / base.wall_s.max(1e-9);
                let ok = ratio <= max_ratio;
                println!(
                    "{key:<42} {:>10.2} {:>10.2} {ratio:>6.2}x  {}",
                    base.wall_s,
                    case.wall_s,
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    failures.push(format!("{key}: {ratio:.2}x > {max_ratio:.1}x"));
                }
            }
            None => {
                println!(
                    "{key:<42} {:>10.2} {:>10} {:>7}  MISSING",
                    base.wall_s, "-", "-"
                );
                failures.push(format!("{key}: missing from the PR report"));
            }
        }
    }
    for case in &pr {
        if !baseline
            .iter()
            .any(|b| b.bench == case.bench && b.case == case.case)
        {
            println!(
                "{:<42} {:>10} {:>10.2} {:>7}  new (not gated)",
                format!("{}/{}", case.bench, case.case),
                "-",
                case.wall_s,
                "-"
            );
        }
    }
    if failures.is_empty() {
        println!(
            "\nbench gate passed: {} cases within {max_ratio:.1}x",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
