//! CI bench-regression gate.
//!
//! Compares a PR's `BENCH_pr.json` (written by the smoke benches via
//! `JWINS_BENCH_JSON`) against the checked-in `BENCH_baseline.json` and
//! exits non-zero when any case's wall-time exceeds `max_ratio` × its
//! baseline (default 2.0). Baseline cases missing from the PR report fail
//! too — a bench that silently stopped running is a regression. New cases
//! only present in the PR report are listed but never fail the gate; they
//! become binding once added to the baseline.
//!
//! For every failing case the gate prints the baseline-vs-PR
//! propose/execute/commit wall-time split, so the log answers *which phase
//! regressed* — a parallel speedup can only shrink `execute_s`, so a blowup
//! confined to the sequential phases points away from the thread pool.
//!
//! Exit codes: `0` pass, `1` regression (or missing case), `2` usage or
//! unreadable/unparsable report — CI distinguishes "perf got worse" from
//! "the gate itself broke".
//!
//! ```sh
//! cargo run -p jwins_bench --bin bench_gate -- BENCH_baseline.json BENCH_pr.json [max_ratio]
//! ```

use jwins_bench::report::{load_cases, BenchCase};
use std::path::Path;
use std::process::ExitCode;

/// Exit status for regressions (a case got slower or went missing).
const EXIT_REGRESSED: u8 = 1;
/// Exit status for broken inputs (usage, unreadable or unparsable report).
const EXIT_BAD_INPUT: u8 = 2;

/// Prints a failing case's per-phase wall-time split, baseline vs PR.
fn print_phase_breakdown(base: &BenchCase, pr: &BenchCase) {
    let phases = [
        ("propose", base.propose_s, pr.propose_s),
        ("execute", base.execute_s, pr.execute_s),
        ("commit", base.commit_s, pr.commit_s),
    ];
    if phases.iter().all(|&(_, b, p)| b == 0.0 && p == 0.0) {
        eprintln!("    (no phase data recorded for this case)");
        return;
    }
    eprintln!(
        "    {:<8} {:>10} {:>10} {:>7}",
        "phase", "base s", "pr s", "ratio"
    );
    for (name, base_s, pr_s) in phases {
        let ratio = if base_s > 0.0 {
            format!("{:.2}x", pr_s / base_s)
        } else {
            "-".to_owned()
        };
        eprintln!("    {name:<8} {base_s:>10.4} {pr_s:>10.4} {ratio:>7}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <pr.json> [max_ratio]");
        return ExitCode::from(EXIT_BAD_INPUT);
    }
    let max_ratio: f64 = match args.get(3).map(|s| s.parse()) {
        Some(Ok(ratio)) => ratio,
        Some(Err(_)) => {
            eprintln!("bench_gate: max_ratio must be a number, got {:?}", args[3]);
            return ExitCode::from(EXIT_BAD_INPUT);
        }
        None => 2.0,
    };
    let baseline = match load_cases(Path::new(&args[1])) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("baseline: {e}");
            return ExitCode::from(EXIT_BAD_INPUT);
        }
    };
    let pr = match load_cases(Path::new(&args[2])) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("pr report: {e}");
            return ExitCode::from(EXIT_BAD_INPUT);
        }
    };

    println!(
        "{:<42} {:>10} {:>10} {:>7}  verdict (gate: {max_ratio:.1}x)",
        "bench/case", "base s", "pr s", "ratio"
    );
    let mut failures = Vec::new();
    for base in &baseline {
        let key = format!("{}/{}", base.bench, base.case);
        match pr
            .iter()
            .find(|c| c.bench == base.bench && c.case == base.case)
        {
            Some(case) => {
                let ratio = case.wall_s / base.wall_s.max(1e-9);
                let ok = ratio <= max_ratio;
                println!(
                    "{key:<42} {:>10.2} {:>10.2} {ratio:>6.2}x  {}",
                    base.wall_s,
                    case.wall_s,
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    failures.push((
                        format!("{key}: {ratio:.2}x > {max_ratio:.1}x"),
                        Some((base.clone(), case.clone())),
                    ));
                }
            }
            None => {
                println!(
                    "{key:<42} {:>10.2} {:>10} {:>7}  MISSING",
                    base.wall_s, "-", "-"
                );
                failures.push((format!("{key}: missing from the PR report"), None));
            }
        }
    }
    for case in &pr {
        if !baseline
            .iter()
            .any(|b| b.bench == case.bench && b.case == case.case)
        {
            println!(
                "{:<42} {:>10} {:>10.2} {:>7}  new (not gated)",
                format!("{}/{}", case.bench, case.case),
                "-",
                case.wall_s,
                "-"
            );
        }
    }
    if failures.is_empty() {
        println!(
            "\nbench gate passed: {} cases within {max_ratio:.1}x",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate FAILED:");
        for (message, cases) in &failures {
            eprintln!("  {message}");
            if let Some((base, pr_case)) = cases {
                print_phase_breakdown(base, pr_case);
            }
        }
        ExitCode::from(EXIT_REGRESSED)
    }
}
