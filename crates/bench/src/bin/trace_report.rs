//! `trace_report`: summarize, validate and analyze a JSONL run trace.
//!
//! Usage:
//! `trace_report <trace.jsonl> [--check] [--critical-path] [--target <acc>]
//! [--metrics <prefix>] [--canonicalize <out>]`
//!
//! Prints a post-hoc run report from the archival trace written via
//! `TrainConfig::trace.jsonl_path`:
//!
//! - event counts per kind and the run header/footer (nodes, seed, rounds
//!   run, queue high-water mark);
//! - the execute-batch width histogram per class, with the summed
//!   propose/execute/commit wall times (where the host time actually went);
//! - per-node virtual compute totals (straggler spread);
//! - the top edges by mean mixing staleness (where gossip stalls).
//!
//! With `--critical-path` the report appends the `jwins_metrics`
//! critical-path analysis: the causal chain of compute/uplink/link/wait
//! segments bounding the run's virtual time-to-accuracy, with per-owner
//! blame shares. `--target <acc>` points the analysis at the first
//! evaluation reaching that accuracy instead of the last one.
//!
//! With `--metrics <prefix>` the full metrics aggregation of the trace is
//! exported to `<prefix>.prom` (Prometheus text) and `<prefix>.csv`
//! (windowed time series).
//!
//! With `--canonicalize <out>` the canonical form of the trace — wall-clock
//! side-channel fields zeroed, so the bytes are identical for any worker
//! thread count and any host — is rewritten to `<out>` as JSONL. This is
//! how the checked-in CI baseline `tests/fixtures/trace_smoke_baseline.jsonl`
//! is regenerated after an intended engine-behaviour change.
//!
//! With `--check` the exit code becomes a validation verdict, used by CI
//! against the bench-smoke trace artifact: every line must parse as a
//! `TraceEvent`, virtual time must never run backwards, and the trace must
//! be bracketed by `RunStart`/`RunEnd`. Exit codes: `0` ok, `1` validation
//! or analysis failure, `2` usage/unreadable input.

use jwins_metrics::{CriticalPath, MetricsRegistry, DEFAULT_WINDOW_S};
use jwins_trace::{BatchClass, TraceEvent};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: trace_report <trace.jsonl> [--check] [--critical-path] \
     [--target <acc>] [--metrics <prefix>] [--canonicalize <out>]";

struct Args {
    path: String,
    check: bool,
    critical_path: bool,
    target: Option<f64>,
    metrics: Option<String>,
    canonicalize: Option<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut path = None;
        let mut check = false;
        let mut critical_path = false;
        let mut target = None;
        let mut metrics = None;
        let mut canonicalize = None;
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--check" => check = true,
                "--critical-path" => critical_path = true,
                "--target" => {
                    let value = it.next().ok_or("--target needs an accuracy value")?;
                    let acc: f64 = value
                        .parse()
                        .map_err(|_| format!("--target {value:?} is not a number"))?;
                    target = Some(acc);
                }
                "--metrics" => {
                    metrics = Some(
                        it.next()
                            .ok_or("--metrics needs an output path prefix")?
                            .clone(),
                    );
                }
                "--canonicalize" => {
                    canonicalize = Some(
                        it.next()
                            .ok_or("--canonicalize needs an output path")?
                            .clone(),
                    );
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                positional => {
                    if path.replace(positional.to_owned()).is_some() {
                        return Err("expected exactly one trace path".into());
                    }
                }
            }
        }
        Ok(Self {
            path: path.ok_or("missing trace path")?,
            check,
            critical_path,
            target,
            metrics,
            canonicalize,
        })
    }
}

struct ClassStats {
    batches: u64,
    events: u64,
    /// Histogram over power-of-two width buckets: `widths[k]` counts
    /// batches with `2^k <= width < 2^(k+1)`.
    widths: Vec<u64>,
    propose_ns: u64,
    execute_ns: u64,
    commit_ns: u64,
}

impl ClassStats {
    fn new() -> Self {
        Self {
            batches: 0,
            events: 0,
            widths: Vec::new(),
            propose_ns: 0,
            execute_ns: 0,
            commit_ns: 0,
        }
    }

    fn add(&mut self, width: u32, propose_ns: u64, execute_ns: u64, commit_ns: u64) {
        self.batches += 1;
        self.events += u64::from(width);
        let bucket = (32 - width.max(1).leading_zeros() - 1) as usize;
        if self.widths.len() <= bucket {
            self.widths.resize(bucket + 1, 0);
        }
        self.widths[bucket] += 1;
        self.propose_ns += propose_ns;
        self.execute_ns += execute_ns;
        self.commit_ns += commit_ns;
    }

    fn print(&self, label: &str) {
        println!(
            "  {label}: {} batches, {} events (mean width {:.1})",
            self.batches,
            self.events,
            self.events as f64 / (self.batches.max(1)) as f64
        );
        for (k, &count) in self.widths.iter().enumerate() {
            if count > 0 {
                println!(
                    "    width {:>4}..{:<4} {count}",
                    1u64 << k,
                    (1u64 << (k + 1)) - 1
                );
            }
        }
        println!(
            "    wall: propose {:.3} ms | execute {:.3} ms | commit {:.3} ms",
            self.propose_ns as f64 * 1e-6,
            self.execute_ns as f64 * 1e-6,
            self.commit_ns as f64 * 1e-6
        );
    }
}

fn fail(message: String, failures: &mut u64) {
    eprintln!("trace_report: {message}");
    *failures += 1;
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("trace_report: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let path = &args.path;
    let parsed = match jwins_trace::read_jsonl(path) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0u64;
    for failure in &parsed.failures {
        fail(format!("{path}:{failure}"), &mut failures);
    }
    let events = parsed.events;

    // Structural validation: bracketed by RunStart/RunEnd, virtual time
    // never runs backwards (emission happens in commit order, and the
    // simulation clock is monotone).
    match events.first() {
        Some(TraceEvent::RunStart { .. }) => {}
        _ => fail(
            format!("{path}: trace does not start with RunStart"),
            &mut failures,
        ),
    }
    match events.last() {
        Some(TraceEvent::RunEnd { .. }) => {}
        _ => fail(
            format!("{path}: trace does not end with RunEnd"),
            &mut failures,
        ),
    }
    let mut clock = 0u64;
    for event in &events {
        let t = event.t_ns();
        if t < clock {
            fail(
                format!("{path}: virtual time ran backwards ({t} < {clock})"),
                &mut failures,
            );
            break;
        }
        clock = t;
    }

    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut train_batches = ClassStats::new();
    let mut mix_batches = ClassStats::new();
    // shard -> (batches, events): how evenly the sharded queue feeds the
    // worker pool (a single hot shard means routing, not load, is skewed).
    let mut shard_widths: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    // node -> total virtual compute ns.
    let mut compute: BTreeMap<u32, u64> = BTreeMap::new();
    // (from, to) -> (staleness sum, messages).
    let mut edges: BTreeMap<(u32, u32), (f64, u64)> = BTreeMap::new();
    for event in &events {
        *counts.entry(event.kind_name()).or_insert(0) += 1;
        match *event {
            TraceEvent::ExecuteBatch {
                class,
                width,
                shard,
                propose_ns,
                execute_ns,
                commit_ns,
                ..
            } => {
                match class {
                    BatchClass::Train => {
                        train_batches.add(width, propose_ns, execute_ns, commit_ns)
                    }
                    BatchClass::Mix => mix_batches.add(width, propose_ns, execute_ns, commit_ns),
                }
                let slot = shard_widths.entry(shard).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += u64::from(width);
            }
            TraceEvent::Train {
                node, compute_ns, ..
            } => {
                *compute.entry(node).or_insert(0) += compute_ns;
            }
            TraceEvent::MsgMixed {
                node,
                from,
                staleness_s,
                ..
            } => {
                let slot = edges.entry((from, node)).or_insert((0.0, 0));
                slot.0 += staleness_s;
                slot.1 += 1;
            }
            _ => {}
        }
    }

    println!("== trace_report: {path} ==");
    for event in &events {
        if let TraceEvent::RunStart {
            nodes,
            rounds,
            seed,
        } = *event
        {
            println!("run: {nodes} nodes, {rounds} rounds, seed {seed}");
        }
        if let TraceEvent::RunEnd {
            t_ns,
            rounds_run,
            queue_depth_hwm,
        } = *event
        {
            println!(
                "end: {rounds_run} rounds in {:.3} virtual s, queue HWM {queue_depth_hwm}",
                t_ns as f64 * 1e-9
            );
        }
    }
    println!("events ({} total):", events.len());
    for (name, count) in &counts {
        println!("  {name:<16} {count}");
    }
    if train_batches.batches + mix_batches.batches > 0 {
        println!("execute batches:");
        if train_batches.batches > 0 {
            train_batches.print("train");
        }
        if mix_batches.batches > 0 {
            mix_batches.print("mix");
        }
        // Per-shard breakdown only earns its lines when the queue is
        // actually sharded (legacy traces default every batch to shard 0).
        if shard_widths.len() > 1 {
            println!("  batch width by shard (head-event shard):");
            for (&shard, &(batches, batch_events)) in &shard_widths {
                println!(
                    "    shard {shard:>3}: {batches} batches, {batch_events} events \
                     (mean width {:.1})",
                    batch_events as f64 / batches.max(1) as f64
                );
            }
        }
    }
    if !compute.is_empty() {
        let total: u64 = compute.values().sum();
        let slowest = compute.iter().map(|(&n, &ns)| (ns, n)).max().unwrap();
        let fastest = compute.iter().map(|(&n, &ns)| (ns, n)).min().unwrap();
        println!(
            "compute: node {} slowest ({:.1}% of total), node {} fastest ({:.1}%)",
            slowest.1,
            slowest.0 as f64 * 100.0 / total.max(1) as f64,
            fastest.1,
            fastest.0 as f64 * 100.0 / total.max(1) as f64
        );
    }
    if !edges.is_empty() {
        let mut by_mean: Vec<((u32, u32), f64, u64)> = edges
            .iter()
            .map(|(&edge, &(sum, count))| (edge, sum / count as f64, count))
            .collect();
        // Deterministic order: mean descending, edge id as tie-break.
        by_mean.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        println!("top stall edges (mean mixing staleness):");
        for ((from, to), mean, count) in by_mean.into_iter().take(5) {
            println!("  {from} -> {to}: {mean:.4} s over {count} messages");
        }
    }

    if let Some(out) = &args.canonicalize {
        let mut text = String::new();
        for event in jwins_trace::replay::canonicalize(&events) {
            text.push_str(&serde::json::to_string(&event));
            text.push('\n');
        }
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("trace_report: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        println!("canonical trace rewritten to {out}");
    }

    if let Some(prefix) = &args.metrics {
        let registry = MetricsRegistry::from_events(DEFAULT_WINDOW_S, &events);
        for (suffix, contents) in [
            ("prom", registry.to_prometheus()),
            ("csv", registry.to_csv()),
        ] {
            let out = format!("{prefix}.{suffix}");
            if let Err(e) = std::fs::write(&out, contents) {
                eprintln!("trace_report: cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!("metrics: wrote {out}");
        }
    }

    if args.critical_path {
        match CriticalPath::analyze(&events, args.target) {
            Ok(path) => print!("{}", path.render()),
            Err(e) => {
                eprintln!("trace_report: critical path unavailable: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.check {
        if failures > 0 {
            eprintln!("trace_report: {failures} validation failure(s)");
            return ExitCode::FAILURE;
        }
        println!("check: ok");
    } else if failures > 0 {
        println!("warnings: {failures} (run with --check to fail on these)");
    }
    ExitCode::SUCCESS
}
