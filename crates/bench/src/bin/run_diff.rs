//! `run_diff`: structural comparison of two recorded runs.
//!
//! Usage: `run_diff <a.jsonl> <b.jsonl> [--context <n>] [--bench <base.json> <pr.json>]`
//!
//! Canonicalizes both JSONL traces (stripping the wall-clock side channel
//! of `ExecuteBatch`) and reports:
//!
//! - the first divergent canonical event, with a context window of the
//!   surrounding events on both sides;
//! - per-event-kind count deltas and summary-metric deltas (bytes,
//!   staleness, accuracy, virtual time) between the two runs;
//! - with `--bench`, per-case wall-time and propose/execute/commit phase
//!   deltas between two `BENCH_*.json` reports.
//!
//! Two runs of the same configuration and seed must compare identical —
//! that is the engine's determinism contract — so CI diffs every PR's
//! smoke trace against the checked-in baseline: an *expected* behaviour
//! change shows up as a reviewed baseline update, an unexpected one as a
//! divergence report in the log.
//!
//! Exit codes: `0` identical, `1` divergent, `2` usage/unreadable or
//! unparsable input — a caller can accept "legitimately diverged" (`1`)
//! while still failing on a broken trace (`2`).

use jwins_bench::report::load_cases;
use jwins_metrics::diff::{TraceDiff, DEFAULT_CONTEXT};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str =
    "usage: run_diff <a.jsonl> <b.jsonl> [--context <n>] [--bench <base.json> <pr.json>]";

fn load_trace(path: &str) -> Result<Vec<jwins_trace::TraceEvent>, String> {
    let parsed = jwins_trace::read_jsonl(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !parsed.is_clean() {
        let first = &parsed.failures[0];
        return Err(format!(
            "{path} has {} unparsable line(s); first: {first}",
            parsed.failures.len()
        ));
    }
    Ok(parsed.events)
}

/// Prints per-case wall/phase deltas between two bench reports.
fn print_bench_deltas(base_path: &str, pr_path: &str) -> Result<(), String> {
    let base = load_cases(Path::new(base_path))?;
    let pr = load_cases(Path::new(pr_path))?;
    println!("bench-case deltas ({base_path} vs {pr_path}):");
    println!(
        "  {:<42} {:>9} {:>9} {:>9} {:>9}",
        "bench/case", "wall", "propose", "execute", "commit"
    );
    for b in &base {
        let key = format!("{}/{}", b.bench, b.case);
        match pr.iter().find(|c| c.bench == b.bench && c.case == b.case) {
            Some(c) => {
                let delta = |base: f64, pr: f64| {
                    if base > 0.0 {
                        format!("{:+.1}%", (pr - base) / base * 100.0)
                    } else if pr > 0.0 {
                        "new".to_owned()
                    } else {
                        "-".to_owned()
                    }
                };
                println!(
                    "  {key:<42} {:>9} {:>9} {:>9} {:>9}",
                    delta(b.wall_s, c.wall_s),
                    delta(b.propose_s, c.propose_s),
                    delta(b.execute_s, c.execute_s),
                    delta(b.commit_s, c.commit_s),
                );
            }
            None => println!("  {key:<42} missing from {pr_path}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut context = DEFAULT_CONTEXT;
    let mut bench: Option<(String, String)> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--context" => {
                let Some(value) = it.next() else {
                    eprintln!("run_diff: --context needs a count\n{USAGE}");
                    return ExitCode::from(2);
                };
                match value.parse() {
                    Ok(n) => context = n,
                    Err(_) => {
                        eprintln!("run_diff: --context {value:?} is not a number\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--bench" => {
                let (Some(base), Some(pr)) = (it.next(), it.next()) else {
                    eprintln!("run_diff: --bench needs two report paths\n{USAGE}");
                    return ExitCode::from(2);
                };
                bench = Some((base.clone(), pr.clone()));
            }
            flag if flag.starts_with("--") => {
                eprintln!("run_diff: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            positional => paths.push(positional.to_owned()),
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let (a, b) = match (load_trace(&paths[0]), load_trace(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("run_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = TraceDiff::compare(&a, &b);
    println!("== run_diff: {} vs {} ==", paths[0], paths[1]);
    print!("{}", diff.render(context));

    if let Some((base_path, pr_path)) = bench {
        if let Err(e) = print_bench_deltas(&base_path, &pr_path) {
            eprintln!("run_diff: {e}");
            return ExitCode::from(2);
        }
    }

    if diff.is_identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
