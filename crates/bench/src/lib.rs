//! Shared harness for the per-figure/table benchmark targets.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! JWINS evaluation (see `DESIGN.md` §5 for the index). They share:
//!
//! - [`Scale`]: `small` (default, minutes), `medium`, `paper` (hours, the
//!   full 96–384-node configuration) — selected via `JWINS_SCALE`;
//! - workload constructors that build the five dataset analogues plus their
//!   models at the chosen scale;
//! - experiment runners wiring strategies into the engine;
//! - output helpers that print paper-style rows and persist CSV series under
//!   `target/experiments/`.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::participation::RandomDropout;
use jwins::strategies::{
    ChocoConfig, ChocoSgd, FullSharing, Jwins, JwinsConfig, PowerGossip, PowerGossipConfig,
    QuantizedSharing, RandomModelWalk, RandomSampling,
};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{celeba_like, cifar_like, femnist_like, ImageConfig};
use jwins_data::ratings::{movielens_like, RatingConfig};
use jwins_data::text::{shakespeare_like, TextConfig};
use jwins_data::Partitioned;
use jwins_nn::models::{
    gn_lenet, leaf_cnn, CharLstm, ClassSample, ImageClassifier, MatrixFactorization,
};
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::{DynamicRegular, StaticTopology, TopologyProvider};
use jwins_topology::peer_sampling::{PeerSampling, PeerSamplingConfig};
use jwins_topology::repair::RepairPolicy;

pub mod report;

/// Experiment scale, from the `JWINS_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly defaults (minutes for the whole suite).
    Small,
    /// Closer to the paper's shape (tens of minutes).
    Medium,
    /// The paper's node counts and round budgets (hours).
    Paper,
}

/// Whether `JWINS_SMOKE=1` requests the CI-sized reduced configuration:
/// benches shrink to a couple of minutes and examples to seconds, so CI
/// *runs* them instead of merely compiling them. Delegates to the single
/// definition of the smoke contract in [`jwins::smoke`].
pub use jwins::smoke;

impl Scale {
    /// Reads `JWINS_SCALE` (`small`/`medium`/`paper`; default `small`).
    pub fn from_env() -> Self {
        match std::env::var("JWINS_SCALE").unwrap_or_default().as_str() {
            "medium" => Scale::Medium,
            "paper" => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// Node count for the main experiments (96 in the paper).
    pub fn nodes(self) -> usize {
        match self {
            Scale::Small => 8,
            Scale::Medium => 24,
            Scale::Paper => 96,
        }
    }

    /// Graph degree (4-regular in the paper's 96-node runs).
    pub fn degree(self) -> usize {
        4
    }

    /// Multiplier applied to round budgets.
    pub fn round_factor(self) -> f64 {
        match self {
            Scale::Small => 1.0,
            Scale::Medium => 2.0,
            Scale::Paper => 6.0,
        }
    }

    /// Scales a base (small) round count.
    pub fn rounds(self, base: usize) -> usize {
        ((base as f64) * self.round_factor()).round() as usize
    }
}

/// Which algorithm to run.
#[derive(Debug, Clone)]
pub enum Algo {
    /// Full-sharing D-PSGD.
    Full,
    /// Random-sampling sparsification at a fraction.
    Random(f64),
    /// JWINS with a config.
    Jwins(JwinsConfig),
    /// CHOCO-SGD with a config.
    Choco(ChocoConfig),
    /// PowerGossip with a config (extension).
    PowerGossip(PowerGossipConfig),
    /// QSGD-quantized full sharing with this many levels (extension).
    Quantized(u32),
    /// Random model walk (extension).
    Rmw,
}

impl Algo {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Algo::Full => "full-sharing".into(),
            Algo::Random(f) => format!("random-sampling@{:.0}%", f * 100.0),
            Algo::Jwins(c) => {
                let base = match (&c.wavelet, c.accumulation, c.randomized_cutoff) {
                    (Some(_), true, true) => "jwins",
                    (None, _, _) => "jwins-no-wavelet",
                    (_, false, _) => "jwins-no-accum",
                    (_, _, false) => "jwins-no-cutoff",
                };
                base.into()
            }
            Algo::Choco(c) => format!("choco@{:.0}%", c.fraction * 100.0),
            Algo::PowerGossip(c) => match &c.layout {
                jwins::strategies::MatrixLayout::GlobalSquare => {
                    format!("power-gossip-glob@r{}", c.rank)
                }
                _ => format!("power-gossip@rank{}", c.rank),
            },
            Algo::Quantized(levels) => format!("qsgd@{levels}"),
            Algo::Rmw => "random-model-walk".into(),
        }
    }

    /// Builds the per-node strategy.
    pub fn strategy(&self, node: usize, seed: u64) -> Box<dyn ShareStrategy> {
        match self {
            Algo::Full => Box::new(FullSharing::new()),
            Algo::Random(f) => Box::new(RandomSampling::new(*f, seed)),
            Algo::Jwins(c) => Box::new(Jwins::new(
                c.clone(),
                seed.wrapping_mul(0x9E37_79B9).wrapping_add(node as u64),
            )),
            Algo::Choco(c) => Box::new(ChocoSgd::new(c.clone())),
            // The cluster-shared seed for PowerGossip's per-edge warm
            // starts; node-distinct seeds for the stochastic strategies.
            Algo::PowerGossip(c) => Box::new(PowerGossip::new(c.clone(), node, seed)),
            Algo::Quantized(levels) => Box::new(QuantizedSharing::new(
                *levels,
                seed.wrapping_mul(0x85EB_CA6B).wrapping_add(node as u64),
            )),
            Algo::Rmw => Box::new(RandomModelWalk::new(
                seed.wrapping_mul(0xC2B2_AE35).wrapping_add(node as u64),
            )),
        }
    }
}

/// One of the five dataset/model pairings of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// CIFAR-10 analogue with GN-LeNet, 2-shard non-IID.
    Cifar,
    /// MovieLens analogue with matrix factorization.
    MovieLens,
    /// Shakespeare analogue with the stacked LSTM.
    Shakespeare,
    /// CelebA analogue with the LEAF CNN (binary).
    Celeba,
    /// FEMNIST analogue with the LEAF CNN.
    Femnist,
}

impl Workload {
    /// All five, in the paper's Table I order.
    pub fn all() -> [Workload; 5] {
        [
            Workload::Cifar,
            Workload::MovieLens,
            Workload::Shakespeare,
            Workload::Celeba,
            Workload::Femnist,
        ]
    }

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Cifar => "CIFAR-like",
            Workload::MovieLens => "MovieLens-like",
            Workload::Shakespeare => "Shakespeare-like",
            Workload::Celeba => "CelebA-like",
            Workload::Femnist => "FEMNIST-like",
        }
    }

    /// Base round budget at small scale (stands in for the paper's epochs).
    pub fn base_rounds(self) -> usize {
        match self {
            Workload::Cifar => 120,
            Workload::MovieLens => 100,
            Workload::Shakespeare => 50,
            Workload::Celeba => 60,
            Workload::Femnist => 80,
        }
    }

    /// Learning rate tuned for the small-scale workloads (grid-searched on
    /// the full-sharing baseline, mirroring the paper's §IV-B-b protocol).
    pub fn lr(self) -> f32 {
        match self {
            Workload::Cifar => 0.08,
            Workload::MovieLens => 0.3,
            Workload::Shakespeare => 0.8,
            Workload::Celeba => 0.05,
            Workload::Femnist => 0.08,
        }
    }

    /// Runs this workload with the given algorithm; one seeded repetition.
    pub fn run(self, scale: Scale, algo: &Algo, cfg: &RunCfg) -> RunResult {
        match self {
            Workload::Cifar => run_cifar(scale, algo, cfg, 2),
            Workload::MovieLens => run_movielens(scale, algo, cfg),
            Workload::Shakespeare => run_shakespeare(scale, algo, cfg),
            Workload::Celeba => run_celeba(scale, algo, cfg),
            Workload::Femnist => run_femnist(scale, algo, cfg),
        }
    }
}

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct RunCfg {
    /// Communication rounds.
    pub rounds: usize,
    /// Master seed.
    pub seed: u64,
    /// Evaluation cadence.
    pub eval_every: usize,
    /// Stop when this mean test accuracy is reached.
    pub target_accuracy: Option<f64>,
    /// Record per-node α draws.
    pub record_alphas: bool,
    /// Override learning rate (None = workload default).
    pub lr: Option<f32>,
    /// Use a per-round re-randomized topology (Figure 7).
    pub dynamic_topology: bool,
    /// Per-round node dropout probability (extension: churn experiments).
    pub dropout: Option<f64>,
    /// Sample the topology from a Cyclon peer-sampling service instead of a
    /// random-regular construction (extension).
    pub peer_sampling: bool,
    /// Execution substrate (barrier rounds vs event-driven async gossip).
    pub execution: ExecutionMode,
    /// Transport backend (virtual-time sim vs real OS-thread channels —
    /// extension: `ext_transport`).
    pub transport: jwins::config::TransportKind,
    /// Hardware heterogeneity for event-driven runs.
    pub heterogeneity: HeterogeneityProfile,
    /// Fault injection and staleness policy for event-driven runs
    /// (extension: chaos and bounded-staleness experiments).
    pub faults: jwins_fault::FaultConfig,
    /// Liveness-aware topology repair for event-driven runs under a fault
    /// plan (extension: `ext_repair`).
    pub repair: RepairPolicy,
    /// Byzantine attack schedule injected at message-build time
    /// (extension: `ext_byzantine`).
    pub attack: jwins_adversary::AttackPlan,
    /// Robust aggregation rule screening decoded contributions at mixing
    /// time (extension: `ext_byzantine`).
    pub robust: jwins_adversary::Robust,
    /// Virtual-time evaluation checkpoint cadence for event-driven runs.
    pub eval_interval_s: Option<f64>,
    /// Override the simulated wall-clock model (None = engine default).
    pub time_model: Option<jwins_net::TimeModel>,
    /// Worker threads (`0` = all available cores). Thread count never
    /// changes results — see the `ext_parallel` speedup bench.
    pub threads: usize,
    /// Event-queue shard count for event-driven runs (`0` = single heap).
    /// Purely structural: any value replays the same schedule — see the
    /// `ext_scale` bench.
    pub shards: usize,
    /// Commit-order mode for event-driven runs (`Strict` by default;
    /// `Window` widens batches under heterogeneous speeds at the cost of a
    /// bounded virtual-time skew — extension: `ext_scale`).
    pub ordering: jwins_sim::Ordering,
    /// Tracing configuration applied to the run (None = engine default:
    /// flight recorder only, no files). Tracing is observational — see the
    /// `trace_determinism` test.
    pub trace: Option<jwins_trace::TraceConfig>,
    /// An in-memory trace collector attached to the run's tracer. Clones
    /// share the buffer: keep one handle here and read phase timings back
    /// after the run (`report::PhaseTotals::from_events`).
    pub trace_memory: Option<jwins_trace::MemorySink>,
}

impl RunCfg {
    /// Defaults for `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        Self {
            rounds,
            seed: 42,
            eval_every: (rounds / 12).max(5),
            target_accuracy: None,
            record_alphas: false,
            lr: None,
            dynamic_topology: false,
            dropout: None,
            peer_sampling: false,
            execution: ExecutionMode::default(),
            transport: jwins::config::TransportKind::default(),
            heterogeneity: HeterogeneityProfile::default(),
            faults: jwins_fault::FaultConfig::default(),
            repair: RepairPolicy::None,
            attack: jwins_adversary::AttackPlan::None,
            robust: jwins_adversary::Robust::None,
            eval_interval_s: None,
            time_model: None,
            threads: 0,
            shards: 0,
            ordering: jwins_sim::Ordering::Strict,
            trace: None,
            trace_memory: None,
        }
    }
}

fn train_config(cfg: &RunCfg, lr: f32) -> TrainConfig {
    let mut c = TrainConfig::new(cfg.rounds);
    c.local_steps = 2;
    c.batch_size = 8;
    c.lr = cfg.lr.unwrap_or(lr);
    c.seed = cfg.seed;
    c.eval_every = cfg.eval_every;
    c.eval_test_samples = 256;
    c.target_accuracy = cfg.target_accuracy;
    c.record_alphas = cfg.record_alphas;
    c.execution = cfg.execution;
    c.transport = cfg.transport;
    c.heterogeneity = cfg.heterogeneity.clone();
    c.faults = cfg.faults.clone();
    c.repair = cfg.repair;
    c.attack = cfg.attack.clone();
    c.robust = cfg.robust;
    c.eval_interval_s = cfg.eval_interval_s;
    c.threads = cfg.threads;
    c.shards = cfg.shards;
    c.ordering = cfg.ordering;
    if let Some(tm) = cfg.time_model {
        c.time_model = tm;
    }
    if let Some(trace) = &cfg.trace {
        c.trace = trace.clone();
    }
    c
}

fn topology(scale: Scale, cfg: &RunCfg, nodes: usize, degree: usize) -> Box<dyn TopologyProvider> {
    let _ = scale;
    if cfg.peer_sampling {
        let ps = PeerSamplingConfig {
            degree: degree.div_ceil(2).max(1),
            ..PeerSamplingConfig::default()
        };
        Box::new(PeerSampling::new(nodes, ps, cfg.seed ^ 0xAB))
    } else if cfg.dynamic_topology {
        Box::new(DynamicRegular::new(nodes, degree, cfg.seed ^ 0xD1).expect("feasible graph"))
    } else {
        Box::new(
            StaticTopology::random_regular(nodes, degree, cfg.seed ^ 0xD1).expect("feasible graph"),
        )
    }
}

struct BoxedProvider(Box<dyn TopologyProvider>);

impl TopologyProvider for BoxedProvider {
    fn nodes(&self) -> usize {
        self.0.nodes()
    }
    fn topology(&self, round: usize) -> jwins_topology::dynamic::RoundTopology {
        self.0.topology(round)
    }
    fn topology_for(
        &self,
        round: usize,
        live: &jwins_topology::LiveSet,
    ) -> jwins_topology::dynamic::RoundTopology {
        self.0.topology_for(round, live)
    }
    fn is_live_aware(&self) -> bool {
        self.0.is_live_aware()
    }
    fn is_dynamic(&self) -> bool {
        self.0.is_dynamic()
    }
}

fn run_image(
    data: Partitioned<ClassSample>,
    img: &ImageConfig,
    model: impl Fn(u64) -> ImageClassifier,
    scale: Scale,
    algo: &Algo,
    cfg: &RunCfg,
    lr: f32,
) -> RunResult {
    let nodes = data.nodes();
    let _ = img;
    let mut builder = Trainer::builder(train_config(cfg, lr))
        .topology(BoxedProvider(topology(scale, cfg, nodes, scale.degree())))
        .test_set(data.test.clone())
        .nodes(data.node_train, |node| {
            (model(cfg.seed), algo.strategy(node, cfg.seed))
        });
    if let Some(p) = cfg.dropout {
        builder = builder.participation(RandomDropout::new(p, cfg.seed ^ 0xC4));
    }
    if let Some(m) = &cfg.trace_memory {
        builder = builder.trace_sink(Box::new(m.clone()));
    }
    let trainer = builder.build().expect("valid experiment");
    trainer.run().expect("run completes")
}

/// The CIFAR-like workload (shards per node = 2 for the main runs, 4 for the
/// Figure-10 "less strict" regime).
pub fn run_cifar(scale: Scale, algo: &Algo, cfg: &RunCfg, shards: usize) -> RunResult {
    run_cifar_n(scale, scale.nodes(), scale.degree(), algo, cfg, shards)
}

/// CIFAR-like with an explicit node count/degree (Figure 10 scalability).
pub fn run_cifar_n(
    scale: Scale,
    nodes: usize,
    degree: usize,
    algo: &Algo,
    cfg: &RunCfg,
    shards: usize,
) -> RunResult {
    let mut img = ImageConfig::cifar_small();
    if scale == Scale::Paper {
        img.train_per_unit = 512;
    }
    let data = cifar_like(&img, nodes, shards, cfg.seed);
    let lr = cfg.lr.unwrap_or(Workload::Cifar.lr());
    let mut builder = Trainer::builder(train_config(cfg, lr))
        .topology(BoxedProvider(topology(scale, cfg, nodes, degree)))
        .test_set(data.test.clone())
        .nodes(data.node_train, |node| {
            (
                gn_lenet(
                    img.channels,
                    img.height,
                    img.width,
                    img.classes,
                    8,
                    cfg.seed,
                ),
                algo.strategy(node, cfg.seed),
            )
        });
    if let Some(p) = cfg.dropout {
        builder = builder.participation(RandomDropout::new(p, cfg.seed ^ 0xC4));
    }
    if let Some(m) = &cfg.trace_memory {
        builder = builder.trace_sink(Box::new(m.clone()));
    }
    let trainer = builder.build().expect("valid experiment");
    trainer.run().expect("run completes")
}

/// The FEMNIST-like workload.
pub fn run_femnist(scale: Scale, algo: &Algo, cfg: &RunCfg) -> RunResult {
    let img = ImageConfig::femnist_small();
    let nodes = scale.nodes();
    let data = femnist_like(&img, nodes, nodes * 3, cfg.seed);
    run_image(
        data,
        &img,
        |seed| {
            leaf_cnn(
                img.channels,
                img.height,
                img.width,
                img.classes,
                4,
                24,
                seed,
            )
        },
        scale,
        algo,
        cfg,
        Workload::Femnist.lr(),
    )
}

/// The CelebA-like workload.
pub fn run_celeba(scale: Scale, algo: &Algo, cfg: &RunCfg) -> RunResult {
    let img = ImageConfig::celeba_small();
    let nodes = scale.nodes();
    let data = celeba_like(&img, nodes, nodes * 2, cfg.seed);
    run_image(
        data,
        &img,
        |seed| {
            leaf_cnn(
                img.channels,
                img.height,
                img.width,
                img.classes,
                3,
                16,
                seed,
            )
        },
        scale,
        algo,
        cfg,
        Workload::Celeba.lr(),
    )
}

/// The MovieLens-like workload.
pub fn run_movielens(scale: Scale, algo: &Algo, cfg: &RunCfg) -> RunResult {
    let mut rcfg = RatingConfig::small();
    rcfg.users = scale.nodes() * 6;
    rcfg.items = 64;
    let data = movielens_like(&rcfg, scale.nodes(), cfg.seed);
    let users = data.users;
    let items = data.items;
    let mut builder = Trainer::builder(train_config(cfg, Workload::MovieLens.lr()))
        .topology(BoxedProvider(topology(
            scale,
            cfg,
            scale.nodes(),
            scale.degree(),
        )))
        .test_set(data.partitioned.test.clone())
        .nodes(data.partitioned.node_train, |node| {
            (
                MatrixFactorization::new(users, items, 8, cfg.seed),
                algo.strategy(node, cfg.seed),
            )
        });
    if let Some(p) = cfg.dropout {
        builder = builder.participation(RandomDropout::new(p, cfg.seed ^ 0xC4));
    }
    if let Some(m) = &cfg.trace_memory {
        builder = builder.trace_sink(Box::new(m.clone()));
    }
    let trainer = builder.build().expect("valid experiment");
    trainer.run().expect("run completes")
}

/// The Shakespeare-like workload.
pub fn run_shakespeare(scale: Scale, algo: &Algo, cfg: &RunCfg) -> RunResult {
    let tcfg = TextConfig::small();
    let nodes = scale.nodes();
    let data = shakespeare_like(&tcfg, nodes, nodes, cfg.seed);
    let mut builder = Trainer::builder(train_config(cfg, Workload::Shakespeare.lr()))
        .topology(BoxedProvider(topology(scale, cfg, nodes, scale.degree())))
        .test_set(data.test.clone())
        .nodes(data.node_train, |node| {
            (
                CharLstm::new(tcfg.vocab, 8, 24, cfg.seed),
                algo.strategy(node, cfg.seed),
            )
        });
    if let Some(p) = cfg.dropout {
        builder = builder.participation(RandomDropout::new(p, cfg.seed ^ 0xC4));
    }
    if let Some(m) = &cfg.trace_memory {
        builder = builder.trace_sink(Box::new(m.clone()));
    }
    let trainer = builder.build().expect("valid experiment");
    trainer.run().expect("run completes")
}

/// Formats bytes as a human unit.
pub fn fmt_bytes(bytes: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    if bytes >= GIB {
        format!("{:.2} GiB", bytes / GIB)
    } else if bytes >= MIB {
        format!("{:.2} MiB", bytes / MIB)
    } else {
        format!("{:.1} KiB", bytes / 1024.0)
    }
}

/// Writes a CSV under `target/experiments/`, creating the directory.
pub fn save_csv(name: &str, contents: &str) {
    let dir = std::path::Path::new("target").join("experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if std::fs::write(&path, contents).is_ok() {
            println!("  [csv] {}", path.display());
        }
    }
}

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
pub fn banner(figure: &str, claim: &str) {
    println!("\n================================================================");
    println!("{figure}");
    println!("paper claim: {claim}");
    println!(
        "scale: {:?} (set JWINS_SCALE=medium|paper for larger runs)",
        Scale::from_env()
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // from_env reads the live environment; just exercise the helpers.
        assert_eq!(Scale::Small.nodes(), 8);
        assert_eq!(Scale::Paper.nodes(), 96);
        assert_eq!(Scale::Small.rounds(100), 100);
        assert_eq!(Scale::Medium.rounds(100), 200);
    }

    #[test]
    fn algo_labels_are_stable() {
        assert_eq!(Algo::Full.label(), "full-sharing");
        assert_eq!(Algo::Random(0.37).label(), "random-sampling@37%");
        assert_eq!(Algo::Jwins(JwinsConfig::paper_default()).label(), "jwins");
        assert_eq!(Algo::Choco(ChocoConfig::budget_20()).label(), "choco@20%");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512.0), "0.5 KiB");
        assert_eq!(fmt_bytes(3.0 * 1024.0 * 1024.0), "3.00 MiB");
        assert!(fmt_bytes(2.5 * 1024.0 * 1024.0 * 1024.0).ends_with("GiB"));
    }

    #[test]
    fn workload_table_is_complete() {
        assert_eq!(Workload::all().len(), 5);
        for w in Workload::all() {
            assert!(!w.name().is_empty());
            assert!(w.base_rounds() > 0);
            assert!(w.lr() > 0.0);
        }
    }
}
