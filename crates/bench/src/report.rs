//! Machine-readable bench reports for the CI `bench-smoke` gate.
//!
//! Benches that participate in the perf trajectory append structured
//! results — wall-time plus the bytes/accuracy numbers the paper's cost
//! metrics are built from — to the JSON array named by the
//! `JWINS_BENCH_JSON` environment variable (typically `BENCH_pr.json` in
//! CI, uploaded as an artifact). The `bench_gate` binary then compares a
//! PR's report against the checked-in `BENCH_baseline.json` and fails the
//! job when any case's wall-time regresses beyond the allowed ratio.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One bench case's structured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCase {
    /// Bench target name (e.g. `ext_repair`).
    pub bench: String,
    /// Case label within the bench (e.g. `degree-preserving/full-sharing`).
    pub case: String,
    /// Host wall-clock seconds the case took (the regression gate input).
    pub wall_s: f64,
    /// Cumulative bytes sent per node at the end of the run.
    pub bytes_per_node: f64,
    /// Final mean test accuracy.
    pub final_accuracy: f64,
    /// Bytes per node per unit of final accuracy (lower = cheaper). `-1`
    /// when the run never reached positive accuracy — the quotient is
    /// undefined there, and a non-finite value would not survive the JSON
    /// round-trip (the serializer writes non-finite floats as `null`).
    pub bytes_per_accuracy: f64,
    /// Wall seconds spent in the sequential propose phases, summed over the
    /// run's `ExecuteBatch` trace records. `0` when the case ran without a
    /// trace collector attached (older reports parse the same way).
    #[serde(default)]
    pub propose_s: f64,
    /// Wall seconds in the parallel execute phases.
    #[serde(default)]
    pub execute_s: f64,
    /// Wall seconds in the sequential commit phases.
    #[serde(default)]
    pub commit_s: f64,
}

/// Propose/execute/commit wall-time totals folded from a trace. The phase
/// split shows where a configuration's wall time actually goes — a parallel
/// speedup can only shrink `execute_s`, so a case dominated by the
/// sequential phases has no headroom regardless of thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Sequential propose wall seconds.
    pub propose_s: f64,
    /// Parallel execute wall seconds.
    pub execute_s: f64,
    /// Sequential commit wall seconds.
    pub commit_s: f64,
}

impl PhaseTotals {
    /// Sums the phase spans of every `ExecuteBatch` record in `events`.
    pub fn from_events(events: &[jwins_trace::TraceEvent]) -> Self {
        let mut totals = Self::default();
        for event in events {
            if let jwins_trace::TraceEvent::ExecuteBatch {
                propose_ns,
                execute_ns,
                commit_ns,
                ..
            } = *event
            {
                totals.propose_s += propose_ns as f64 * 1e-9;
                totals.execute_s += execute_ns as f64 * 1e-9;
                totals.commit_s += commit_ns as f64 * 1e-9;
            }
        }
        totals
    }
}

impl BenchCase {
    /// Builds a case from a finished run.
    pub fn from_result(
        bench: &str,
        case: &str,
        wall_s: f64,
        result: &jwins::metrics::RunResult,
    ) -> Self {
        let last = result.final_record();
        let bytes_per_node = last.map_or(0.0, |r| r.cum_bytes_per_node);
        let final_accuracy = last.map_or(0.0, |r| r.test_accuracy);
        let bytes_per_accuracy = if final_accuracy > 0.0 {
            bytes_per_node / final_accuracy
        } else {
            -1.0
        };
        Self {
            bench: bench.to_owned(),
            case: case.to_owned(),
            wall_s,
            bytes_per_node,
            final_accuracy,
            bytes_per_accuracy,
            propose_s: 0.0,
            execute_s: 0.0,
            commit_s: 0.0,
        }
    }

    /// Attaches phase-time totals folded from the run's trace.
    #[must_use]
    pub fn with_phases(mut self, phases: PhaseTotals) -> Self {
        self.propose_s = phases.propose_s;
        self.execute_s = phases.execute_s;
        self.commit_s = phases.commit_s;
        self
    }
}

/// The report path, if `JWINS_BENCH_JSON` is set.
pub fn report_path() -> Option<PathBuf> {
    std::env::var_os("JWINS_BENCH_JSON").map(PathBuf::from)
}

/// Appends `cases` to the JSON array at `$JWINS_BENCH_JSON`; a no-op when
/// the variable is unset, so ordinary bench runs stay file-free. Multiple
/// bench binaries append to the same file sequentially (CI runs them one
/// after another).
///
/// # Panics
///
/// Panics when the file already exists but cannot be parsed, or the write
/// fails — silently resetting the array would make the downstream
/// `bench_gate` report the *earlier* benches as "missing" and hide the
/// real fault (truncated write, full disk).
pub fn append_cases(cases: &[BenchCase]) {
    let Some(path) = report_path() else {
        return;
    };
    let mut all: Vec<BenchCase> = match std::fs::read_to_string(&path) {
        Ok(text) => serde::json::from_str(&text).unwrap_or_else(|e| {
            panic!(
                "existing bench report {} is unparsable ({e:?}); refusing to overwrite it",
                path.display()
            )
        }),
        // Only a genuinely missing file starts a fresh report; any other
        // read error (permissions, I/O) would silently drop the earlier
        // benches' cases and misdiagnose as "missing" at the gate.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => panic!("cannot read bench report {}: {e}", path.display()),
    };
    all.extend(cases.iter().cloned());
    std::fs::write(&path, serde::json::to_string(&all))
        .unwrap_or_else(|e| panic!("cannot write bench report {}: {e}", path.display()));
    println!("  [bench-json] {} ({} cases)", path.display(), all.len());
}

/// Loads a report file written by [`append_cases`].
///
/// # Errors
///
/// Describes unreadable or unparsable files.
pub fn load_cases(path: &Path) -> Result<Vec<BenchCase>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde::json::from_str(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_round_trip_through_json() {
        let cases = vec![
            BenchCase {
                bench: "ext_repair".into(),
                case: "no-repair/full-sharing".into(),
                wall_s: 1.25,
                bytes_per_node: 1024.0,
                final_accuracy: 0.5,
                bytes_per_accuracy: 2048.0,
                propose_s: 0.0,
                execute_s: 0.0,
                commit_s: 0.0,
            },
            BenchCase {
                bench: "ext_parallel".into(),
                case: "threads-2".into(),
                wall_s: 0.75,
                bytes_per_node: 512.0,
                final_accuracy: 0.25,
                bytes_per_accuracy: 2048.0,
                propose_s: 0.01,
                execute_s: 0.6,
                commit_s: 0.02,
            },
        ];
        let text = serde::json::to_string(&cases);
        let back: Vec<BenchCase> = serde::json::from_str(&text).unwrap();
        assert_eq!(back, cases);
    }

    #[test]
    fn reports_without_phase_fields_still_parse() {
        // BENCH_baseline.json predates the phase-time columns; the gate must
        // keep reading it.
        let old = r#"[{"bench":"b","case":"c","wall_s":1.0,"bytes_per_node":2.0,
            "final_accuracy":0.5,"bytes_per_accuracy":4.0}]"#;
        let back: Vec<BenchCase> = serde::json::from_str(old).unwrap();
        assert_eq!(back[0].propose_s, 0.0);
        assert_eq!(back[0].execute_s, 0.0);
        assert_eq!(back[0].commit_s, 0.0);
    }

    #[test]
    fn phase_totals_fold_execute_batches() {
        use jwins_trace::{BatchClass, TraceEvent};
        let events = vec![
            TraceEvent::RoundComplete { t_ns: 5, round: 0 },
            TraceEvent::ExecuteBatch {
                t_ns: 1,
                class: BatchClass::Train,
                round: 0,
                width: 4,
                queue_depth: 8,
                shard: 0,
                wall_start_ns: 0,
                propose_ns: 1_000_000,
                execute_ns: 5_000_000,
                commit_ns: 2_000_000,
            },
            TraceEvent::ExecuteBatch {
                t_ns: 2,
                class: BatchClass::Mix,
                round: 0,
                width: 4,
                queue_depth: 4,
                shard: 1,
                wall_start_ns: 10,
                propose_ns: 500_000,
                execute_ns: 1_500_000,
                commit_ns: 1_000_000,
            },
        ];
        let totals = PhaseTotals::from_events(&events);
        assert!((totals.propose_s - 0.0015).abs() < 1e-12);
        assert!((totals.execute_s - 0.0065).abs() < 1e-12);
        assert!((totals.commit_s - 0.003).abs() < 1e-12);
        let case = BenchCase::from_result(
            "b",
            "c",
            1.0,
            &jwins::metrics::RunResult {
                strategy: "test".into(),
                records: Vec::new(),
                total_traffic: jwins_net::TrafficStats::default(),
                rounds_run: 0,
                reached_target: None,
                alpha_history: Vec::new(),
                measured_latency_s: None,
            },
        )
        .with_phases(totals);
        assert_eq!(case.execute_s, totals.execute_s);
    }

    #[test]
    fn from_result_guards_zero_accuracy() {
        let result = jwins::metrics::RunResult {
            strategy: "test".into(),
            records: Vec::new(),
            total_traffic: jwins_net::TrafficStats::default(),
            rounds_run: 0,
            reached_target: None,
            alpha_history: Vec::new(),
            measured_latency_s: None,
        };
        let case = BenchCase::from_result("b", "c", 1.0, &result);
        assert_eq!(
            case.bytes_per_accuracy, -1.0,
            "undefined cost uses a JSON-safe sentinel, not a non-finite float"
        );
        assert_eq!(case.final_accuracy, 0.0);
        // The degenerate case must survive the JSON round-trip (non-finite
        // floats would come back as unparsable nulls).
        let text = serde::json::to_string(&vec![case.clone()]);
        let back: Vec<BenchCase> = serde::json::from_str(&text).unwrap();
        assert_eq!(back, vec![case]);
    }
}
