//! Figure 6: JWINS vs CHOCO-SGD at 20% and 10% communication budgets.
//!
//! The paper constrains both algorithms to the same fraction of the
//! full-sharing budget (JWINS via two-point α distributions, CHOCO via its
//! TopK fraction) and finds JWINS up to 3.9× faster to the target accuracy
//! and up to +9.3 accuracy points for the same traffic, with the gap growing
//! as the budget shrinks.

use jwins::cutoff::AlphaDistribution;
use jwins::strategies::{ChocoConfig, JwinsConfig};
use jwins_bench::{banner, fmt_bytes, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6 — low communication budgets: JWINS vs CHOCO-SGD",
        "JWINS reaches target accuracy up to 3.9× faster; up to +9.3pp at equal traffic; gap grows as budget shrinks",
    );
    let rounds = scale.rounds(130);
    let mut gap_by_budget = Vec::new();
    for (label, alpha, choco) in [
        (
            "20%",
            AlphaDistribution::budget_20(),
            ChocoConfig::budget_20(),
        ),
        (
            "10%",
            AlphaDistribution::budget_10(),
            ChocoConfig::budget_10(),
        ),
    ] {
        println!("\n--- communication budget {label} ---");
        let mut final_accs = Vec::new();
        for algo in [
            Algo::Jwins(JwinsConfig::with_alpha(alpha.clone())),
            Algo::Choco(choco.clone()),
        ] {
            let mut cfg = RunCfg::new(rounds);
            cfg.eval_every = (rounds / 16).max(5);
            let result = run_cifar(scale, &algo, &cfg, 2);
            let last = result.final_record().expect("evaluated");
            println!(
                "{:<12} final acc {:>5.1}%  loss {:.3}  sent/node {:>12}  sim time {:>7.1}s",
                algo.label(),
                last.test_accuracy * 100.0,
                last.test_loss,
                fmt_bytes(last.cum_bytes_per_node),
                last.sim_time_s
            );
            save_csv(&format!("fig6_{label}_{}", algo.label()), &result.to_csv());
            final_accs.push(last.test_accuracy);
        }
        let gap_pp = (final_accs[0] - final_accs[1]) * 100.0;
        println!("JWINS − CHOCO accuracy gap at budget {label}: {gap_pp:+.1} pp");
        gap_by_budget.push(gap_pp);
    }
    println!("\npaper-vs-measured:");
    println!("  paper: JWINS +2.4pp at 20%, +9.3pp at 10%; gap grows as budget shrinks");
    println!(
        "  here:  +{:.1}pp at 20%, +{:.1}pp at 10% => {}",
        gap_by_budget[0],
        gap_by_budget[1],
        if gap_by_budget[0] > 0.0 && gap_by_budget[1] >= gap_by_budget[0] - 1.0 {
            "REPRODUCED (shape)"
        } else if gap_by_budget.iter().all(|g| *g > 0.0) {
            "PARTIAL (JWINS ahead at both budgets)"
        } else {
            "NOT reproduced"
        }
    );
}
