//! Extension: the same `TrainConfig` on real OS threads vs the sim oracle.
//!
//! The transport abstraction's promise is that the engine does not care
//! what carries its messages: the virtual-time [`jwins_net::SimNetwork`]
//! and the real-concurrency [`jwins_net::ThreadChannelTransport`] (one OS
//! thread per node, framed messages over per-edge channels, wall-clock
//! stamps) are interchangeable backends behind one trait. This experiment
//! drives the promise end to end per strategy:
//!
//! 1. run the config on the **channel** backend — real threads, real
//!    nondeterministic arrival order, measured flight latency;
//! 2. replay the *same config + seed* on the **sim** backend under the
//!    latency profile the real run measured ([`jwins::crosscheck`]);
//! 3. cross-check: the two accuracy trajectories must agree within the
//!    declared tolerance, and a fixed-size strategy must meter *identical*
//!    bytes on both backends (frame headers are transport-internal).
//!
//! `JWINS_SMOKE=1` shrinks the cluster and round budget for the CI
//! `bench-smoke` job, which also collects the structured results via
//! `JWINS_BENCH_JSON` (see `jwins_bench::report`).

use jwins::config::{ChannelTransportConfig, ExecutionMode, TransportKind};
use jwins::crosscheck::{self, DEFAULT_ACCURACY_TOLERANCE};
use jwins::strategies::JwinsConfig;
use jwins_bench::report::BenchCase;
use jwins_bench::{banner, fmt_bytes, run_cifar_n, save_csv, Algo, RunCfg, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let smoke = jwins_bench::smoke();
    banner(
        "ext_transport — real OS-thread channels vs the sim oracle",
        "the same config + seed runs on both transport backends and the \
         accuracy trajectories must agree",
    );
    let (nodes, degree, rounds) = if smoke { (8, 2, 6) } else { (16, 4, 20) };
    if smoke {
        println!("[smoke] reduced to {nodes} nodes / {rounds} rounds");
    }
    let mut csv = String::from(
        "strategy,backend,rounds_run,final_accuracy,bytes_per_node,\
         measured_latency_s,max_accuracy_gap,traffic_gap_ratio\n",
    );
    let algos = [
        ("full-sharing", Algo::Full),
        ("jwins", Algo::Jwins(JwinsConfig::paper_default())),
    ];
    let mut cases = Vec::new();
    // When set, the first channel run also writes its full JSONL trace
    // there — CI uploads it as the real-backend artifact. Unlike sim
    // traces it is *not* `trace_report --check`-clean: wall-clock stamps
    // from concurrent node threads interleave, so t_ns is non-monotone
    // across nodes by design.
    let mut real_trace_jsonl = std::env::var("JWINS_REAL_TRACE_JSONL").ok();
    for (label, algo) in algos {
        let mut cfg = RunCfg::new(rounds);
        cfg.eval_every = (rounds / 3).max(2);
        cfg.transport = TransportKind::Channel(ChannelTransportConfig {
            mix_wait_ms: 2_000,
            poll_us: 100,
        });
        if let Some(path) = real_trace_jsonl.take() {
            cfg.trace = Some(jwins_trace::TraceConfig {
                jsonl_path: Some(path),
                ..jwins_trace::TraceConfig::default()
            });
        }
        let start = Instant::now();
        let real = run_cifar_n(scale, nodes, degree, &algo, &cfg, 2);
        let wall_real = start.elapsed().as_secs_f64();
        let measured = real
            .measured_latency_s
            .expect("channel backend measures flight latency");

        // The sim oracle replays the measured profile. In-process flight is
        // a small fraction of the modelled round, so this resolves to the
        // plain barrier sim; a slow backend would flip it to event-driven.
        let mut oracle_cfg = RunCfg::new(rounds);
        oracle_cfg.eval_every = cfg.eval_every;
        let profile = crosscheck::oracle_profile(
            real.measured_latency_s,
            jwins_net::TimeModel::default().compute_s,
        );
        if !profile.is_degenerate() {
            oracle_cfg.execution = ExecutionMode::EventDriven;
            oracle_cfg.heterogeneity = profile;
        }
        let start = Instant::now();
        let oracle = run_cifar_n(scale, nodes, degree, &algo, &oracle_cfg, 2);
        let wall_oracle = start.elapsed().as_secs_f64();

        let check = crosscheck::compare_to_oracle(&real, &oracle, DEFAULT_ACCURACY_TOLERANCE);
        assert!(
            check.within_tolerance(),
            "[{label}] real backend diverged from the sim oracle: {check:?}"
        );
        if matches!(algo, Algo::Full) {
            assert_eq!(
                check.traffic_gap_ratio, 0.0,
                "[{label}] fixed-size strategy must meter identical bytes"
            );
        }
        println!(
            "\n[{label}] {nodes} nodes  measured latency {:.2}ms  \
             max accuracy gap {:.4} (tol {:.2})  traffic gap {:.4}",
            measured * 1e3,
            check.max_accuracy_gap,
            check.tolerance,
            check.traffic_gap_ratio,
        );
        for (backend, result, wall) in [
            ("channel", &real, wall_real),
            ("sim-oracle", &oracle, wall_oracle),
        ] {
            let last = result.final_record().expect("at least one evaluation");
            println!(
                "  {backend:<11} rounds {:>3}  acc {:.3}  bytes/node {:>10}  wall {wall:.1}s",
                result.rounds_run,
                last.test_accuracy,
                fmt_bytes(last.cum_bytes_per_node),
            );
            cases.push(BenchCase::from_result(
                "ext_transport",
                &format!("{label}/{backend}"),
                wall,
                result,
            ));
            csv.push_str(&format!(
                "{label},{backend},{},{:.6},{:.0},{:.6},{:.6},{:.6}\n",
                result.rounds_run,
                last.test_accuracy,
                last.cum_bytes_per_node,
                result.measured_latency_s.unwrap_or(0.0),
                check.max_accuracy_gap,
                check.traffic_gap_ratio,
            ));
        }
    }
    save_csv("ext_transport", &csv);
    jwins_bench::report::append_cases(&cases);
    println!(
        "\nNote: byte columns are application-level (frame headers are \
         transport-internal), so channel and sim rows price traffic on the \
         same axis."
    );
}
