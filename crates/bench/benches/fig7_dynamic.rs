//! Figure 7: dynamic (per-round re-randomized) topologies.
//!
//! The paper randomizes every node's neighbours each round without moving
//! data: full-sharing improves thanks to better mixing, JWINS follows the
//! same trend (dynamic JWINS even beats static full-sharing), and CHOCO —
//! whose error-feedback state assumes a fixed neighbourhood — stops
//! learning.

use jwins::strategies::{ChocoConfig, JwinsConfig};
use jwins_bench::{banner, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7 — dynamic topology: full-sharing static/dynamic, JWINS dynamic (+ CHOCO dynamic)",
        "dynamic mixing improves both full-sharing and JWINS; JWINS-dynamic ≥ full-static; CHOCO breaks",
    );
    let rounds = scale.rounds(90);
    let runs: [(&str, Algo, bool); 5] = [
        ("full-static", Algo::Full, false),
        ("full-dynamic", Algo::Full, true),
        (
            "jwins-static",
            Algo::Jwins(JwinsConfig::paper_default()),
            false,
        ),
        (
            "jwins-dynamic",
            Algo::Jwins(JwinsConfig::paper_default()),
            true,
        ),
        (
            "choco-dynamic",
            Algo::Choco(ChocoConfig {
                fraction: 0.34,
                gamma: 0.6,
                ..ChocoConfig::budget_20()
            }),
            true,
        ),
    ];
    let mut finals = std::collections::HashMap::new();
    println!();
    for (name, algo, dynamic) in runs {
        let mut cfg = RunCfg::new(rounds);
        cfg.dynamic_topology = dynamic;
        cfg.eval_every = (rounds / 12).max(5);
        let result = run_cifar(scale, &algo, &cfg, 2);
        let acc = result.final_accuracy();
        println!("{name:<16} final accuracy {:>5.1}%", acc * 100.0);
        save_csv(&format!("fig7_{name}"), &result.to_csv());
        finals.insert(name, acc);
    }
    let fs = finals["full-static"];
    let fd = finals["full-dynamic"];
    let jd = finals["jwins-dynamic"];
    let cd = finals["choco-dynamic"];
    println!("\npaper-vs-measured:");
    println!("  paper: full-dynamic > full-static; jwins-dynamic ≥ full-static; choco-dynamic ~no learning");
    let ok = fd >= fs - 0.01 && jd >= fs - 0.03 && cd < jd;
    println!(
        "  here:  full-dyn {:.1}% vs full-stat {:.1}%; jwins-dyn {:.1}%; choco-dyn {:.1}% => {}",
        fd * 100.0,
        fs * 100.0,
        jd * 100.0,
        cd * 100.0,
        if ok { "REPRODUCED (shape)" } else { "PARTIAL" }
    );
}
