//! Extension: fault-aware topology repair under churn.
//!
//! The paper's bandwidth comparisons assume a fixed communication graph;
//! under churn that graph leaks bytes, because a crashed node's neighbours
//! keep addressing it until it rejoins (or forever, for permanent
//! failures). This harness runs a 64-node CIFAR-like cluster through a
//! staggered churn plan — part of the victims rejoin, part never do — and
//! compares three policies:
//!
//! - `no-repair` (`RepairPolicy::None`): today's behaviour — survivors pay
//!   for dead edges;
//! - `degree-preserving` (`RepairPolicy::DegreePreserving`): orphaned
//!   half-edges are re-paired among the survivors, keeping degree and the
//!   mixing spectral gap healthy;
//! - `resample` (`RepairPolicy::PeerSamplingResample`): survivors draw
//!   fresh live peers uniformly, as a peer-sampling service would.
//!
//! For full-sharing, JWINS and CHoCo at matched budgets, the table reports
//! final accuracy, simulated time, cumulative bytes per node, the repair
//! telemetry (`edges_rewired`, `bandwidth_saved_bytes`) and the headline
//! metric: bytes per node per unit of final accuracy. The run asserts the
//! paper-extending claim — no-repair wastes strictly more bytes per unit
//! accuracy than degree-preserving repair under churn.
//!
//! `JWINS_SMOKE=1` shrinks the sweep (16 nodes, 2 algorithms) for the CI
//! `bench-smoke` job, which also collects the structured results via
//! `JWINS_BENCH_JSON` (see `jwins_bench::report`).

use jwins::config::ExecutionMode;
use jwins::cutoff::AlphaDistribution;
use jwins::metrics::RunResult;
use jwins::strategies::{ChocoConfig, JwinsConfig};
use jwins_bench::report::BenchCase;
use jwins_bench::{banner, fmt_bytes, run_cifar_n, save_csv, Algo, RunCfg, Scale};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, FaultTimeline, RejoinMode};
use jwins_sim::HeterogeneityProfile;
use jwins_topology::repair::RepairPolicy;
use std::time::Instant;

/// Heavy staggered churn: a third of the cluster crashes early, most of it
/// permanently; every third victim rejoins re-synced. Early permanent
/// crashes maximize the regime the experiment isolates — a no-repair
/// cluster keeps spending on dead edges round after round while its
/// survivors' effective degree (and mixing) decays.
fn churn_plan(nodes: usize) -> FaultPlan {
    let victims = (nodes / 3).max(2);
    let outages = (0..victims)
        .map(|k| {
            let node = 2 + k * (nodes / victims).max(1);
            let at_s = 1.5 + 1.1 * k as f64;
            if k % 3 == 1 {
                FaultOutage {
                    rejoin: RejoinMode::Resync,
                    ..FaultOutage::new(node, at_s, 5.0)
                }
            } else {
                FaultOutage::new(node, at_s, f64::INFINITY)
            }
        })
        .collect();
    FaultPlan::Scripted(outages)
}

fn run_once(
    scale: Scale,
    nodes: usize,
    degree: usize,
    rounds: usize,
    algo: &Algo,
    repair: RepairPolicy,
) -> RunResult {
    let mut cfg = RunCfg::new(rounds);
    cfg.eval_every = rounds;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 2.0, 0.002, 12.5e6);
    cfg.time_model = Some(jwins_net::TimeModel {
        compute_s: 1.0,
        ..jwins_net::TimeModel::default()
    });
    cfg.faults = FaultConfig {
        plan: churn_plan(nodes),
        ..FaultConfig::default()
    };
    cfg.repair = repair;
    run_cifar_n(scale, nodes, degree, algo, &cfg, 2)
}

fn policy_label(p: RepairPolicy) -> &'static str {
    match p {
        RepairPolicy::None => "no-repair",
        RepairPolicy::DegreePreserving => "degree-preserving",
        RepairPolicy::PeerSamplingResample => "resample",
        _ => "unknown",
    }
}

fn main() {
    let scale = Scale::from_env();
    let smoke = jwins_bench::smoke();
    banner(
        "ext_repair — fault-aware topology repair under churn",
        "survivors re-wiring around dead nodes spend strictly fewer bytes \
         per unit accuracy than clusters that keep paying for dead edges",
    );
    let (nodes, degree, rounds) = if smoke {
        (16, 4, 10)
    } else {
        (64, 4, scale.rounds(12))
    };
    let timeline = FaultTimeline::expand(&churn_plan(nodes), nodes, 0).expect("valid plan");
    println!(
        "{nodes} nodes ({degree}-regular), {rounds} rounds, {} outages \
         (peak {} down simultaneously){}\n",
        timeline.outage_count(),
        timeline.peak_concurrent_down(),
        if smoke { " [smoke]" } else { "" }
    );
    let algos: Vec<Algo> = if smoke {
        vec![
            Algo::Full,
            Algo::Jwins(JwinsConfig::with_alpha(AlphaDistribution::budget_20())),
        ]
    } else {
        vec![
            Algo::Full,
            Algo::Jwins(JwinsConfig::with_alpha(AlphaDistribution::budget_20())),
            Algo::Choco(ChocoConfig::budget_20()),
        ]
    };
    let policies = [
        RepairPolicy::None,
        RepairPolicy::DegreePreserving,
        RepairPolicy::PeerSamplingResample,
    ];

    println!(
        "{:<18} {:<18} {:>8} {:>10} {:>12} {:>9} {:>12} {:>14}",
        "policy", "algorithm", "acc", "sim-time", "bytes/node", "rewired", "saved", "bytes/acc"
    );
    let mut csv = String::from(
        "policy,algo,final_accuracy,sim_time_s,bytes_per_node,edges_rewired,\
         bandwidth_saved_bytes,bytes_per_accuracy,wall_s\n",
    );
    let mut cases = Vec::new();
    // bytes-per-accuracy by (policy, algo) for the headline assertion.
    let mut cost: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (pi, &policy) in policies.iter().enumerate() {
        for algo in &algos {
            let start = Instant::now();
            let result = run_once(scale, nodes, degree, rounds, algo, policy);
            let wall = start.elapsed().as_secs_f64();
            let case = BenchCase::from_result(
                "ext_repair",
                &format!("{}/{}", policy_label(policy), algo.label()),
                wall,
                &result,
            );
            let last = result.final_record().expect("evaluated");
            assert!(
                last.test_accuracy > 0.0,
                "{}: run learned nothing — bytes/accuracy undefined",
                case.case
            );
            let bytes_per_acc = case.bytes_per_accuracy;
            println!(
                "{:<18} {:<18} {:>7.1}% {:>9.1}s {:>12} {:>9} {:>12} {:>14}",
                policy_label(policy),
                algo.label(),
                last.test_accuracy * 100.0,
                last.sim_time_s,
                fmt_bytes(last.cum_bytes_per_node),
                last.edges_rewired,
                fmt_bytes(last.bandwidth_saved_bytes as f64),
                fmt_bytes(bytes_per_acc)
            );
            csv.push_str(&format!(
                "{},{},{:.4},{:.2},{:.0},{},{},{:.0},{:.3}\n",
                policy_label(policy),
                algo.label(),
                last.test_accuracy,
                last.sim_time_s,
                last.cum_bytes_per_node,
                last.edges_rewired,
                last.bandwidth_saved_bytes,
                bytes_per_acc,
                wall
            ));
            cases.push(case);
            cost[pi].push(bytes_per_acc);
        }
    }
    save_csv("ext_repair", &csv);
    jwins_bench::report::append_cases(&cases);

    // The headline claim, asserted on the full-sharing column where message
    // sizes are identical across policies: a cluster that never repairs
    // pays for its dead edges, so each accuracy point costs strictly more.
    let none_cost = cost[0][0];
    let repair_cost = cost[1][0];
    assert!(
        none_cost > repair_cost,
        "no-repair must waste more bytes per accuracy than degree-preserving: \
         {none_cost:.0} vs {repair_cost:.0}"
    );
    println!(
        "\nfull-sharing bytes per unit accuracy: no-repair {} vs \
         degree-preserving {} ({:.1}% cheaper with repair)",
        fmt_bytes(none_cost),
        fmt_bytes(repair_cost),
        100.0 * (1.0 - repair_cost / none_cost)
    );
}
