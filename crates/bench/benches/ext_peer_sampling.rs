//! Extension: peer-sampling topologies (paper §V future work).
//!
//! "JWINS does not assume anything about the topology of the nodes,
//! therefore can be combined with peer-sampling and selection services."
//! This harness extends the Figure-7 topology comparison with a third
//! provider: graphs sampled each round from a Cyclon-style partial-view
//! peer-sampling service — what a real deployment without global membership
//! would actually use. The expectation, following Figure 7's dynamic-
//! topology result, is that peer-sampled (changing) graphs mix at least as
//! well as a static random-regular graph, for full-sharing and JWINS alike.

use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Extension — Cyclon peer-sampled topologies (§V future work; extends Figure 7)",
        "peer-sampled dynamic graphs mix as well as global random-regular constructions",
    );
    let rounds = scale.rounds(100);
    let algos = [
        ("full-sharing", Algo::Full),
        ("jwins", Algo::Jwins(JwinsConfig::paper_default())),
    ];
    type TopoSetter = fn(&mut RunCfg);
    let topologies: [(&str, TopoSetter); 3] = [
        ("static d-regular", |_| {}),
        ("dynamic d-regular", |cfg| cfg.dynamic_topology = true),
        ("peer-sampling", |cfg| cfg.peer_sampling = true),
    ];

    println!(
        "{:<14} {:>18} {:>18} {:>16}",
        "algorithm", "static regular", "dynamic regular", "peer-sampling"
    );
    let mut csv = String::from("algo,topology,final_accuracy\n");
    let mut table = Vec::new();
    for (alg_name, algo) in &algos {
        let mut row = format!("{alg_name:<14}");
        let mut accs = Vec::new();
        for (topo_name, set) in &topologies {
            let mut cfg = RunCfg::new(rounds);
            cfg.eval_every = rounds;
            set(&mut cfg);
            let result = run_cifar(scale, algo, &cfg, 2);
            let acc = result.final_record().expect("evaluated").test_accuracy;
            row.push_str(&format!(" {:>17.1}%", acc * 100.0));
            csv.push_str(&format!("{alg_name},{topo_name},{acc:.4}\n"));
            accs.push(acc);
        }
        println!("{row}");
        table.push(accs);
    }
    save_csv("ext_peer_sampling", &csv);

    println!("\npaper-vs-measured:");
    println!("  paper: Figure 7 shows dynamic topologies beat static for full-sharing and JWINS;");
    println!("         peer-sampling services are proposed as future work");
    let jwins_static = table[1][0];
    let jwins_ps = table[1][2];
    println!(
        "  here:  JWINS on peer-sampled graphs {:.1}% vs static {:.1}% => {}",
        jwins_ps * 100.0,
        jwins_static * 100.0,
        if jwins_ps >= jwins_static - 0.03 {
            "SUPPORTED (no global construction needed)"
        } else {
            "PEER SAMPLING UNDERPERFORMS at this scale"
        }
    );
}
