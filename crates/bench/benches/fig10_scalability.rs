//! Figure 10: scalability in the number of nodes.
//!
//! The paper grows the cluster 96 → 192 → 288 → 384 (degrees 4, 5, 5, 6)
//! with the less strict 4-shard partitioning and shows (row 1) JWINS
//! reaching higher accuracy than random sampling sooner at every size
//! (−1700…−1800 rounds to the target) and (row 2) the *cumulative data sent
//! by all nodes until the target accuracy* favouring JWINS more as the
//! cluster grows. Here the ladder is n, 2n, 3n, 4n from the scale's base
//! node count, and both algorithms run until a fixed target accuracy — the
//! paper's row-2 protocol. JWINS and random sampling are budget-matched per
//! round (E[α] ≈ 34% vs 37%), so savings come from faster convergence.

use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, fmt_bytes, run_cifar_n, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 10 — scalability: node ladder ×1, ×2, ×3, ×4, run until target accuracy",
        "JWINS reaches the target in fewer rounds at every size; cluster-wide bytes-to-target favour JWINS",
    );
    let base = scale.nodes();
    let ladder = [(base, 4usize), (2 * base, 5), (3 * base, 5), (4 * base, 6)];
    let max_rounds = scale.rounds(140);
    let target = 0.90;
    let mut csv = String::from("nodes,rounds_random,rounds_jwins,bytes_random,bytes_jwins\n");
    let mut round_leads = Vec::new();
    let mut byte_ratios = Vec::new();
    println!(
        "\n{:>6} {:>20} {:>14} {:>20} {:>16}",
        "nodes", "random rounds→90%", "JWINS rounds", "random data (all)", "JWINS data"
    );
    for (nodes, degree) in ladder {
        let mut rounds_to = Vec::new();
        let mut bytes_to = Vec::new();
        for algo in [
            Algo::Random(0.37),
            Algo::Jwins(JwinsConfig::paper_default()),
        ] {
            let mut cfg = RunCfg::new(max_rounds);
            cfg.eval_every = 2;
            cfg.target_accuracy = Some(target);
            // Figure 10 uses the less strict non-IID regime: 4 shards/node.
            let result = run_cifar_n(scale, nodes, degree, &algo, &cfg, 4);
            match result.reached_target {
                Some(hit) => {
                    rounds_to.push((hit.round + 1) as f64);
                    // Row 2 plots data sent by *all* nodes until the target.
                    bytes_to.push(hit.bytes_per_node * nodes as f64);
                }
                None => {
                    rounds_to.push(f64::NAN);
                    bytes_to.push(f64::NAN);
                }
            }
        }
        println!(
            "{nodes:>6} {:>20} {:>14} {:>20} {:>16}",
            rounds_to[0],
            rounds_to[1],
            fmt_bytes(bytes_to[0]),
            fmt_bytes(bytes_to[1])
        );
        csv.push_str(&format!(
            "{nodes},{},{},{},{}\n",
            rounds_to[0], rounds_to[1], bytes_to[0], bytes_to[1]
        ));
        round_leads.push(rounds_to[0] - rounds_to[1]);
        byte_ratios.push(bytes_to[0] / bytes_to[1]);
    }
    save_csv("fig10_scalability", &csv);
    println!("\npaper-vs-measured:");
    println!("  paper: JWINS needs ~1700-1800 fewer rounds than random sampling at every size;");
    println!("         cluster-wide data-to-target favours JWINS, growing with n");
    let ahead = round_leads.iter().filter(|l| **l >= 0.0).count();
    let cheaper = byte_ratios.iter().filter(|r| **r >= 1.0).count();
    println!(
        "  here:  round leads {:?}, byte ratios {:?}",
        round_leads
            .iter()
            .map(|l| if l.is_nan() { f64::NAN } else { *l })
            .collect::<Vec<_>>(),
        byte_ratios
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  => {}",
        if ahead >= 3 && cheaper >= 3 {
            "REPRODUCED (shape)"
        } else {
            "PARTIAL"
        }
    );
}
