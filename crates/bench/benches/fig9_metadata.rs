//! Figure 9: metadata size with and without Elias gamma compression.
//!
//! Without compression, index metadata is the same size as the shared
//! parameters (both 32-bit), wasting ~50% of the traffic; the paper measures
//! a 9.9× metadata reduction from Elias gamma over the delta-coded index
//! array. This bench also extends the comparison with the varint middle
//! ground and Elias delta (DESIGN.md §7 ablation).

use jwins::sparsify::top_k_indices;
use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, fmt_bytes, run_cifar, save_csv, Algo, RunCfg, Scale};
use jwins_codec::sparse::{IndexCodec, ValueCodec};
use jwins_codec::{delta, lz, varint};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 9 — metadata bytes without vs with Elias gamma",
        "uncompressed metadata ≈ payload (50% waste); Elias gamma shrinks it ~9.9×",
    );
    let rounds = scale.rounds(25);
    let mut rows = Vec::new();
    for (name, index_codec) in [
        ("raw-u32", IndexCodec::RawU32),
        ("varint-delta", IndexCodec::VarintDelta),
        ("elias-gamma", IndexCodec::EliasGammaDelta),
    ] {
        let mut config = JwinsConfig::paper_default();
        config.index_codec = index_codec;
        // Raw values isolate the metadata effect (the paper's chart shows
        // 32-bit params vs 32-bit indices).
        config.value_codec = ValueCodec::Raw;
        let mut cfg = RunCfg::new(rounds);
        cfg.eval_every = rounds;
        let result = run_cifar(scale, &Algo::Jwins(config), &cfg, 2);
        let t = result.total_traffic;
        println!(
            "{name:<14} parameters {:>12}  metadata {:>12}  metadata share {:>5.1}%",
            fmt_bytes(t.payload_sent as f64),
            fmt_bytes(t.metadata_sent as f64),
            100.0 * t.metadata_sent as f64 / t.bytes_sent as f64
        );
        rows.push((name, t.payload_sent, t.metadata_sent));
    }
    let mut csv = String::from("codec,payload_bytes,metadata_bytes\n");
    for (name, p, m) in &rows {
        csv.push_str(&format!("{name},{p},{m}\n"));
    }
    save_csv("fig9_metadata", &csv);

    // §III-C: "we conducted experiments using various general-purpose
    // compression algorithms" before settling on Elias gamma. Reproduce that
    // off-line comparison on a representative TopK index stream (10% of a
    // 100k-coefficient model, scores shaped like accumulated changes).
    // Hash-based scores: irregular like accumulated SGD changes (a periodic
    // synthetic signal would hand the dictionary coder artificial repeats).
    let scores: Vec<f32> = (0..100_000u64)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5851);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (z ^ (z >> 31)) as f32 / u64::MAX as f32
        })
        .collect();
    let indices = top_k_indices(&scores, 10_000);
    let raw: Vec<u8> = indices.iter().flat_map(|i| i.to_le_bytes()).collect();
    let lz_raw = lz::compress(&raw);
    let mut deltas_raw = Vec::with_capacity(raw.len());
    let mut prev = 0u32;
    for &i in &indices {
        deltas_raw.extend_from_slice(&(i - prev).to_le_bytes());
        prev = i;
    }
    let lz_delta = lz::compress(&deltas_raw);
    let mut vbytes = Vec::new();
    let mut prev = 0u32;
    for &i in &indices {
        varint::write_u64(&mut vbytes, u64::from(i - prev));
        prev = i;
    }
    let gamma = delta::encode_gamma(&indices).expect("strictly increasing");
    println!(
        "
general-purpose vs entropy coders on one 10k-index stream:"
    );
    for (name, bytes) in [
        ("raw u32", raw.len()),
        ("LZ77 (raw u32)", lz_raw.len()),
        ("LZ77 (delta u32)", lz_delta.len()),
        ("varint delta", vbytes.len()),
        ("Elias gamma delta", gamma.len()),
    ] {
        println!(
            "  {name:<20} {:>10}  ({:.2} bits/index)",
            fmt_bytes(bytes as f64),
            bytes as f64 * 8.0 / indices.len() as f64
        );
    }
    let gamma_wins = gamma.len() < lz_delta.len() && gamma.len() < vbytes.len();
    println!(
        "  => {}",
        if gamma_wins {
            "Elias gamma wins (the paper's §III-C finding)"
        } else {
            "dictionary coder competitive on this stream (regular gaps)"
        }
    );
    assert!(
        gamma.len() * 2 < raw.len(),
        "Elias gamma must at least halve the raw index bytes"
    );

    let raw_meta = rows[0].2 as f64;
    let gamma_meta = rows[2].2 as f64;
    let ratio = raw_meta / gamma_meta;
    let raw_share = raw_meta / (rows[0].1 as f64 + raw_meta);
    println!("\npaper-vs-measured:");
    println!("  paper: metadata ≈ 50% of traffic uncompressed; 9.9x compression with Elias gamma");
    println!(
        "  here:  uncompressed metadata share {:.1}%; Elias gamma {:.1}x smaller => {}",
        raw_share * 100.0,
        ratio,
        if raw_share > 0.4 && ratio > 4.0 {
            "REPRODUCED (shape)"
        } else {
            "PARTIAL"
        }
    );
}
