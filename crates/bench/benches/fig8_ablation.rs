//! Figure 8: ablation of JWINS's three components.
//!
//! Removing the wavelet transform hurts most; removing accumulation or the
//! randomized cut-off hurts less; full JWINS reaches the lowest test loss.

use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 8 — ablation: JWINS without wavelet / accumulation / randomized cut-off",
        "wavelet matters most; each removed component raises the test loss; full JWINS is best",
    );
    let rounds = scale.rounds(90);
    let variants: [(&str, JwinsConfig); 4] = [
        ("jwins", JwinsConfig::paper_default()),
        ("without-wavelet", JwinsConfig::without_wavelet()),
        ("without-accumulation", JwinsConfig::without_accumulation()),
        (
            "without-random-cutoff",
            JwinsConfig::without_random_cutoff(),
        ),
    ];
    let mut losses = std::collections::HashMap::new();
    println!();
    for (name, config) in variants {
        let mut cfg = RunCfg::new(rounds);
        cfg.eval_every = (rounds / 12).max(5);
        let result = run_cifar(scale, &Algo::Jwins(config), &cfg, 2);
        let last = result.final_record().expect("evaluated");
        println!(
            "{name:<22} final test loss {:.4}  accuracy {:>5.1}%",
            last.test_loss,
            last.test_accuracy * 100.0
        );
        save_csv(&format!("fig8_{name}"), &result.to_csv());
        losses.insert(name, last.test_loss);
    }
    let full = losses["jwins"];
    let worst = [
        "without-wavelet",
        "without-accumulation",
        "without-random-cutoff",
    ]
    .iter()
    .map(|k| losses[k])
    .fold(0.0f64, f64::max);
    println!("\npaper-vs-measured:");
    println!("  paper: full JWINS attains the minimum test loss; removing wavelet degrades most");
    let complete = losses
        .iter()
        .filter(|(k, _)| **k != "jwins")
        .all(|(_, v)| *v >= full - 0.02);
    println!(
        "  here:  full {:.4} vs worst ablation {:.4} => {}",
        full,
        worst,
        if complete {
            "REPRODUCED (full JWINS best)"
        } else {
            "PARTIAL"
        }
    );
}
