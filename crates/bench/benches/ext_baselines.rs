//! Extension: the baselines the paper cites but does not run.
//!
//! §IV-B-c: "PowerGossip is another strong communication-efficient algorithm
//! for DL, but it performs as good as tuned CHOCO in their experiments.
//! Hence, we only compare against CHOCO here." §II-B further names
//! quantization (QSGD) as the other compression family, and §II-A names the
//! random model walk as the other DL communication pattern. This harness
//! runs all of them against JWINS and CHOCO on the CIFAR-like workload for
//! the same number of rounds and reports accuracy versus bytes, so the
//! cited "PowerGossip ≈ tuned CHOCO" claim is measured rather than assumed.

use jwins::cutoff::AlphaDistribution;
use jwins::strategies::{ChocoConfig, JwinsConfig, PowerGossipConfig};
use jwins_bench::{banner, fmt_bytes, run_cifar, save_csv, Algo, RunCfg, Scale};
use jwins_data::images::ImageConfig;
use jwins_nn::models::gn_lenet;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Extension — cited-but-unrun baselines (PowerGossip, QSGD, random model walk)",
        "PowerGossip ≈ tuned CHOCO without the γ hyperparameter; \
         quantization and RMW trade accuracy for bytes differently than sparsification",
    );
    let rounds = scale.rounds(100);
    // Per-layer matricization from the exact GN-LeNet the CIFAR runner
    // builds — the original PowerGossip design. The global-reshape arm is
    // kept as an ablation of why matricization matters.
    let img = ImageConfig::cifar_small();
    let probe = gn_lenet(img.channels, img.height, img.width, img.classes, 8, 1);
    let segments = probe.param_segments();
    let algos = [
        Algo::Jwins(JwinsConfig::with_alpha(AlphaDistribution::budget_20())),
        Algo::Choco(ChocoConfig::budget_20()),
        Algo::PowerGossip(PowerGossipConfig::per_layer(2, segments)),
        Algo::PowerGossip(PowerGossipConfig::global(2)),
        Algo::Quantized(255),
        Algo::Rmw,
        Algo::Full,
    ];

    println!(
        "{:<20} {:>10} {:>14} {:>16}",
        "algorithm", "accuracy", "bytes/node", "vs full-sharing"
    );
    let mut rows = Vec::new();
    for algo in &algos {
        let mut cfg = RunCfg::new(rounds);
        cfg.eval_every = rounds;
        let result = run_cifar(scale, algo, &cfg, 2);
        let last = result.final_record().expect("evaluated");
        rows.push((algo.label(), last.test_accuracy, last.cum_bytes_per_node));
    }
    let full_bytes = rows.last().expect("full-sharing row").2;
    let mut csv = String::from("algo,final_accuracy,bytes_per_node\n");
    for (label, acc, bytes) in &rows {
        println!(
            "{label:<20} {:>9.1}% {:>14} {:>15.1}%",
            acc * 100.0,
            fmt_bytes(*bytes),
            100.0 * bytes / full_bytes
        );
        csv.push_str(&format!("{label},{acc:.4},{bytes:.0}\n"));
    }
    save_csv("ext_baselines", &csv);

    let jwins_acc = rows[0].1;
    let choco_acc = rows[1].1;
    let pg_acc = rows[2].1;
    let pg_global_acc = rows[3].1;
    println!("\npaper-vs-measured:");
    println!("  paper (citing Vogels et al.): PowerGossip performs as good as tuned CHOCO");
    println!(
        "  here:  CHOCO {:.1}%, PowerGossip {:.1}% (|gap| {:.1}pp) => {}",
        choco_acc * 100.0,
        pg_acc * 100.0,
        (choco_acc - pg_acc).abs() * 100.0,
        if (choco_acc - pg_acc).abs() < 0.08 {
            "CONSISTENT with the cited claim"
        } else {
            "GAP LARGER than the cited claim at this scale"
        }
    );
    println!(
        "  and JWINS ({:.1}%) stays above both, as the paper's Figure 6 shape predicts",
        jwins_acc * 100.0
    );
    println!(
        "  matricization ablation: per-layer {:.1}% vs global reshape {:.1}% — \
         the low-rank structure lives in the layer matrices",
        pg_acc * 100.0,
        pg_global_acc * 100.0
    );
}
