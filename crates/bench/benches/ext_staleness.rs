//! Extension: accuracy vs staleness cap under asynchronous gossip.
//!
//! The event-driven runtime mixes whatever has arrived, so on a straggler
//! cluster fast nodes consume models that are several rounds old. Zhao et
//! al. (2019, "Decentralized Online Learning") show bounding that staleness
//! is the key accuracy knob under asynchrony. This experiment sweeps the
//! staleness cap k — messages older than k rounds are dropped and their
//! mixing weight renormalized into the self-weight — over k ∈ {1, 2, 4, ∞}
//! for full-sharing, JWINS and CHOCO-SGD on a straggler cluster (25% of
//! nodes 4× slower, 100 Mbit/s links).
//!
//! A tight cap trades information for freshness: k = 1 discards most of the
//! stragglers' contributions (watch `expired`), while k = ∞ averages
//! arbitrarily old models. The sweep reports where the trade pays off per
//! strategy, plus the time and traffic to the end of the round budget.

use jwins::config::ExecutionMode;
use jwins::strategies::{ChocoConfig, JwinsConfig};
use jwins_bench::{banner, fmt_bytes, run_cifar, save_csv, Algo, RunCfg, Scale};
use jwins_fault::{FaultConfig, FaultPlan, StalenessPolicy};
use jwins_sim::HeterogeneityProfile;

/// 25% of nodes 4× slower; 100 Mbit/s, 5 ms links (the `ext_async` cluster).
fn straggler_cluster() -> HeterogeneityProfile {
    HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 100.0e6 / 8.0)
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "ext_staleness — accuracy vs staleness cap under stragglers",
        "bounding how stale a mixed message may be (k rounds) recovers \
         accuracy lost to asynchrony without waiting for stragglers",
    );
    let rounds = scale.rounds(60);
    let mut csv = String::from(
        "strategy,cap_rounds,rounds_run,final_accuracy,mean_staleness_s,\
         messages_expired,sim_time_s,bytes_per_node\n",
    );
    let algos = [
        ("full-sharing", Algo::Full),
        ("jwins", Algo::Jwins(JwinsConfig::paper_default())),
        ("choco@20%", Algo::Choco(ChocoConfig::budget_20())),
    ];
    let caps: [Option<usize>; 4] = [Some(1), Some(2), Some(4), None];
    for (label, algo) in algos {
        println!("\n[{label}]");
        println!("  cap     rounds  accuracy  staleness[s]  expired  sim-time[s]  bytes/node");
        for cap in caps {
            let mut cfg = RunCfg::new(rounds);
            cfg.eval_every = (rounds / 15).max(2);
            cfg.execution = ExecutionMode::EventDriven;
            cfg.heterogeneity = straggler_cluster();
            cfg.faults = FaultConfig {
                plan: FaultPlan::None,
                staleness: match cap {
                    Some(k) => StalenessPolicy::drop_after_rounds(k),
                    None => StalenessPolicy::unbounded(),
                },
            };
            let result = run_cifar(scale, &algo, &cfg, 2);
            let last = result.final_record().expect("at least one evaluation");
            let cap_label = cap.map_or("inf".into(), |k| k.to_string());
            println!(
                "  k={cap_label:<4} {:>7}  {:>8.3}  {:>12.3}  {:>7}  {:>11.1}  {:>10}",
                result.rounds_run,
                last.test_accuracy,
                last.mean_staleness_s,
                last.messages_expired,
                last.sim_time_s,
                fmt_bytes(last.cum_bytes_per_node),
            );
            csv.push_str(&format!(
                "{label},{cap_label},{},{:.6},{:.4},{},{:.3},{:.0}\n",
                result.rounds_run,
                last.test_accuracy,
                last.mean_staleness_s,
                last.messages_expired,
                last.sim_time_s,
                last.cum_bytes_per_node,
            ));
        }
    }
    save_csv("ext_staleness", &csv);
    println!(
        "\nNote: dropped-over-cap messages are counted in `expired`; their \
         mixing weight renormalizes into the self-weight, so the effective \
         mixing matrix stays row-stochastic at every cap."
    );
}
