//! Extension: sharded event engine at large node counts.
//!
//! The event-driven engine now runs on a `ShardedEventQueue` (per-node-group
//! heaps behind a global merge) and an arena-backed parameter store, so the
//! simulator scales past the paper's 256-node ceiling. This bench measures
//! two things:
//!
//! 1. **Scale sweep** — events/sec and peak RSS (`VmHWM`) as the node count
//!    grows (1k, 10k; 100k at `JWINS_SCALE=paper`). The workload is a tiny
//!    MLP on synthetic features so the event loop, not the math, dominates.
//! 2. **Ordering modes** — under fully-random per-node speeds
//!    (`ComputeProfile::LogNormal`) no two events share a timestamp, so
//!    `Ordering::Strict` degenerates to singleton batches and the worker
//!    pool starves. `Ordering::Window` admits a bounded virtual-time skew
//!    into each batch and recovers the parallelism; on an 8-core host the
//!    full run asserts >1.5× throughput over the strict global-heap
//!    configuration, and every run asserts the relaxed mode lands within
//!    one accuracy point of strict.
//!
//! Strict mode at any shard count is bit-identical to the original single
//! heap (`tests/scale_determinism.rs` pins this); only `Window` is allowed
//! to reorder, and only within `max_skew_ns`.
//!
//! Peak RSS is read from `/proc/self/status` (`VmHWM`), which is a
//! process-lifetime high-water mark — the sweep therefore runs node counts
//! in ascending order and reports the mark after each size.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::FullSharing;
use jwins::strategy::ShareStrategy;
use jwins_bench::report::BenchCase;
use jwins_bench::{banner, Scale};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::{mlp_classifier, ClassSample};
use jwins_sim::{ComputeProfile, HeterogeneityProfile, LinkProfile, Ordering};
use jwins_topology::dynamic::StaticTopology;
use std::time::Instant;

const SEED: u64 = 42;
const DEGREE: usize = 4;
/// Distinct per-node datasets; nodes beyond this cycle through them, so
/// data generation stays O(1) in the node count.
const TEMPLATES: usize = 16;
/// Samples each node trains on per round (`local_steps = 1`).
const SAMPLES_PER_NODE: usize = 2;

/// Queue events per run: every active node schedules StartRound, TrainDone
/// and Mix once per round (faults and eval ticks are off here).
fn event_count(nodes: usize, rounds: usize) -> u64 {
    3 * nodes as u64 * rounds as u64
}

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`);
/// `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Fully-random per-node compute speeds: with probability 1 no two nodes
/// finish a round at the same instant, so strict ordering cannot batch.
fn random_speeds() -> HeterogeneityProfile {
    HeterogeneityProfile {
        compute: ComputeProfile::LogNormal { sigma: 0.5 },
        links: LinkProfile::Uniform {
            latency_s: 0.002,
            bandwidth_bps: 12.5e6,
        },
    }
}

fn run_scale(
    nodes: usize,
    rounds: usize,
    shards: usize,
    ordering: Ordering,
    threads: usize,
    hetero: HeterogeneityProfile,
) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), TEMPLATES, 2, SEED);
    let node_train: Vec<Vec<ClassSample>> = (0..nodes)
        .map(|i| {
            data.node_train[i % TEMPLATES]
                .iter()
                .take(SAMPLES_PER_NODE)
                .cloned()
                .collect()
        })
        .collect();
    let mut cfg = TrainConfig::new(rounds);
    cfg.seed = SEED;
    cfg.local_steps = 1;
    cfg.batch_size = SAMPLES_PER_NODE;
    cfg.lr = 0.05;
    // One final evaluation over a small slice: at 10k+ nodes a full eval
    // pass would dwarf the event loop this bench is measuring.
    cfg.eval_every = rounds;
    cfg.eval_test_samples = 16;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.heterogeneity = hetero;
    cfg.shards = shards;
    cfg.ordering = ordering;
    let trainer = Trainer::builder(cfg)
        .topology(
            StaticTopology::random_regular(nodes, DEGREE, SEED ^ 0xD1).expect("feasible graph"),
        )
        .test_set(data.test.clone())
        .nodes(node_train, |_node| {
            (
                mlp_classifier(2 * 8 * 8, &[4], 4, SEED),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment");
    trainer.run().expect("run completes")
}

fn main() {
    let scale = Scale::from_env();
    let smoke = jwins_bench::smoke();
    banner(
        "ext_scale — sharded event engine from 1k to 100k nodes",
        "per-shard heaps + arena-backed node state keep events/sec flat and \
         memory sublinear as the node count grows; Window ordering recovers \
         batch parallelism under fully-random speeds",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- Part 1: scale sweep (ascending, for the VmHWM high-water mark).
    let (sizes, rounds): (&[usize], usize) = if smoke {
        (&[256, 1000], 2)
    } else if matches!(scale, Scale::Paper) {
        (&[1000, 10_000, 100_000], 3)
    } else {
        (&[1000, 10_000], 3)
    };
    println!(
        "host cores: {cores}{}\n",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12}",
        "nodes", "rounds", "wall s", "events/s", "peak RSS MB"
    );
    let mut csv =
        String::from("section,nodes,rounds,shards,ordering,threads,wall_s,events_per_s,peak_rss_mb,final_accuracy\n");
    let mut cases = Vec::new();
    let mut rss_per_node: Vec<(usize, f64)> = Vec::new();
    for &nodes in sizes {
        // Shard count scales with the run; stragglers keep cohorts
        // time-aligned so strict batches stay wide even at scale.
        let shards = (nodes / 64).max(1);
        let hetero = HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 12.5e6);
        let start = Instant::now();
        let result = run_scale(nodes, rounds, shards, Ordering::Strict, 0, hetero);
        let wall = start.elapsed().as_secs_f64();
        let events = event_count(nodes, rounds);
        let eps = events as f64 / wall;
        let rss_mb = peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1024.0 * 1024.0));
        rss_per_node.push((nodes, rss_mb));
        let accuracy = result.final_record().map_or(f64::NAN, |r| r.test_accuracy);
        println!("{nodes:>8} {rounds:>8} {wall:>10.2} {eps:>12.0} {rss_mb:>12.1}");
        csv.push_str(&format!(
            "scale,{nodes},{rounds},{shards},strict,0,{wall:.4},{eps:.1},{rss_mb:.1},{accuracy:.6}\n"
        ));
        cases.push(BenchCase::from_result(
            "ext_scale",
            &format!("nodes-{nodes}"),
            wall,
            &result,
        ));
    }
    // Sublinear-memory sanity: 10× the nodes must cost < 10× the peak RSS.
    // VmHWM includes the process baseline, so this is conservative; only
    // checked on the full run where both sizes are present.
    if !smoke {
        if let (Some(&(n_small, rss_small)), Some(&(n_big, rss_big))) =
            (rss_per_node.first(), rss_per_node.last())
        {
            if rss_small.is_finite() && rss_big.is_finite() && rss_small > 0.0 {
                let node_ratio = n_big as f64 / n_small as f64;
                let rss_ratio = rss_big / rss_small;
                println!(
                    "\npeak RSS grew {rss_ratio:.2}x across a {node_ratio:.0}x node-count increase"
                );
                assert!(
                    rss_ratio < node_ratio,
                    "peak RSS grew {rss_ratio:.2}x over a {node_ratio:.0}x node increase — \
                     superlinear memory; the arena or the queue is leaking per-node copies"
                );
            }
        }
    }

    // ---- Part 2: ordering modes under fully-random per-node speeds.
    // Strict cannot batch here (no two events share a timestamp); Window
    // admits a bounded skew and refills the worker pool. The skew is a
    // tenth of the median round time — far below anything that could move
    // a mix deadline.
    let (ord_nodes, ord_rounds) = if smoke { (256, 2) } else { (2000, 4) };
    let skew = Ordering::Window {
        max_skew_ns: 5_000_000, // 5 ms against a 50 ms median compute time
    };
    println!(
        "\nordering modes @ {ord_nodes} nodes, {ord_rounds} rounds, 8 threads, \
         log-normal speeds:"
    );
    println!(
        "{:>24} {:>10} {:>12} {:>10}",
        "mode", "wall s", "events/s", "accuracy"
    );
    let mut strict_result: Option<(f64, RunResult)> = None;
    let mut window_result: Option<(f64, RunResult)> = None;
    for (label, shards, ordering) in [
        ("strict/1-shard (heap)", 1usize, Ordering::Strict),
        ("strict/16-shard", 16, Ordering::Strict),
        ("window/16-shard", 16, skew),
    ] {
        let start = Instant::now();
        let result = run_scale(ord_nodes, ord_rounds, shards, ordering, 8, random_speeds());
        let wall = start.elapsed().as_secs_f64();
        let events = event_count(ord_nodes, ord_rounds);
        let eps = events as f64 / wall;
        let accuracy = result.final_record().map_or(f64::NAN, |r| r.test_accuracy);
        println!("{label:>24} {wall:>10.2} {eps:>12.0} {accuracy:>10.4}");
        let ord_name = if matches!(ordering, Ordering::Strict) {
            "strict"
        } else {
            "window"
        };
        csv.push_str(&format!(
            "ordering,{ord_nodes},{ord_rounds},{shards},{ord_name},8,{wall:.4},{eps:.1},,{accuracy:.6}\n"
        ));
        cases.push(BenchCase::from_result(
            "ext_scale",
            &format!("{ord_name}-{shards}shard"),
            wall,
            &result,
        ));
        match (ordering, shards) {
            (Ordering::Strict, 1) => strict_result = Some((wall, result)),
            (Ordering::Window { .. }, _) => window_result = Some((wall, result)),
            _ => {
                // The 16-shard strict run must replay the 1-shard schedule
                // bit for bit: sharding is structural, not semantic.
                if let Some((_, base)) = &strict_result {
                    base.assert_bit_identical(&result, "strict 1-shard vs 16-shard");
                    println!("{:>24} strict shard counts are bit-identical", "");
                }
            }
        }
    }
    let (strict_wall, strict_run) = strict_result.expect("strict baseline ran");
    let (window_wall, window_run) = window_result.expect("window run ran");

    // Relaxed ordering must not cost (meaningful) accuracy: the skew is
    // bounded well below the mix deadline, so the final model should land
    // within a point of strict on every configuration, smoke included.
    let strict_acc = strict_run
        .final_record()
        .map_or(f64::NAN, |r| r.test_accuracy);
    let window_acc = window_run
        .final_record()
        .map_or(f64::NAN, |r| r.test_accuracy);
    assert!(
        (strict_acc - window_acc).abs() <= 0.01,
        "window ordering drifted from strict: {window_acc:.4} vs {strict_acc:.4} \
         (must agree within 0.01)"
    );
    println!("\nwindow vs strict final accuracy: {window_acc:.4} vs {strict_acc:.4} (within 0.01)");

    jwins_bench::save_csv("ext_scale", &csv);
    jwins_bench::report::append_cases(&cases);

    if smoke {
        println!(
            "\nsmoke run: accuracy parity asserted; the throughput gate needs the full config."
        );
        return;
    }
    let recovery = strict_wall / window_wall;
    if cores >= 8 {
        assert!(
            recovery > 1.5,
            "window ordering should recover >1.5x throughput over the strict \
             global heap at 8 threads under random speeds, got {recovery:.2}x"
        );
        println!(
            "window recovered {recovery:.2}x throughput over the strict heap (>1.5x required)"
        );
    } else {
        println!(
            "Host has {cores} core(s): the >1.5x recovery check applies on hosts \
             with 8+ cores; measured {recovery:.2}x. Accuracy parity was asserted regardless."
        );
    }
}
