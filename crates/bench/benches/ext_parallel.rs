//! Extension: wall-clock speedup of deterministic parallel event execution.
//!
//! The event-driven engine pops maximal batches of simultaneous independent
//! events (same kind, disjoint nodes) and executes them on a worker pool,
//! committing side effects in the queue's seeded order — so `threads` is a
//! pure performance knob that cannot change results (see the module docs of
//! `jwins::engine` and `tests/parallel_determinism.rs`).
//!
//! This experiment measures what that buys on a 64-node asynchronous run
//! with a class-structured straggler profile (25% of nodes 4× slower over
//! 100 Mbit/s links): same-speed cohorts stay time-aligned, so train/mix
//! batches are wide and the pool has real work to split. Every run's full
//! `RoundRecord` stream is asserted bit-identical to the single-threaded
//! baseline — the speedup table is only reportable because the outputs are
//! provably the same.
//!
//! Note: speedup is bounded by host cores and by batch width. On a
//! single-core host the table degenerates to ~1.0×; the determinism
//! assertion still runs and must hold everywhere.

use jwins::config::ExecutionMode;
use jwins::metrics::RunResult;
use jwins_bench::report::{BenchCase, PhaseTotals};
use jwins_bench::{banner, run_cifar_n, Algo, RunCfg, Scale};
use jwins_sim::HeterogeneityProfile;
use std::time::Instant;

const DEGREE: usize = 4;

fn run_with_threads(
    scale: Scale,
    nodes: usize,
    rounds: usize,
    threads: usize,
    trace_jsonl: Option<String>,
) -> (RunResult, PhaseTotals) {
    let mut cfg = RunCfg::new(rounds);
    cfg.threads = threads;
    // Evaluate sparsely so the event loop, not evaluation, dominates.
    cfg.eval_every = rounds;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 12.5e6);
    // The phase-time split comes from the trace's ExecuteBatch records;
    // tracing is observational (see tests/trace_determinism.rs), so the
    // bit-identical assertion below also covers traced-vs-traced runs.
    let memory = jwins_trace::MemorySink::new();
    cfg.trace_memory = Some(memory.clone());
    if let Some(path) = trace_jsonl {
        cfg.trace = Some(jwins_trace::TraceConfig {
            jsonl_path: Some(path),
            ..jwins_trace::TraceConfig::default()
        });
    }
    let result = run_cifar_n(scale, nodes, DEGREE, &Algo::Full, &cfg, 2);
    let phases = PhaseTotals::from_events(&memory.events());
    (result, phases)
}

fn main() {
    let scale = Scale::from_env();
    let smoke = jwins_bench::smoke();
    banner(
        "ext_parallel — deterministic parallel event execution",
        "independent same-time events execute on worker threads behind an \
         ordered commit; outputs are bit-identical at every thread count",
    );
    // The smoke configuration keeps the determinism assertion meaningful
    // (two runs, both compared to the baseline bit for bit) while staying
    // CI-cheap; the speedup table needs the full run.
    let (nodes, rounds, thread_sweep): (usize, usize, &[usize]) = if smoke {
        (16, 3, &[1, 2])
    } else {
        (64, scale.rounds(6), &[1, 2, 4, 8])
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{nodes} nodes, {rounds} rounds, host cores: {cores}{}\n",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>8} {:>10} {:>9}  records",
        "threads", "wall s", "speedup"
    );
    // When set, the first (single-threaded) run also writes its full JSONL
    // trace there — CI validates it with `trace_report --check` and uploads
    // it as an artifact.
    let trace_jsonl = std::env::var("JWINS_TRACE_JSONL").ok();
    let mut csv = String::from("threads,host_cores,wall_s,speedup,rounds_run,final_accuracy\n");
    let mut cases = Vec::new();
    let mut baseline: Option<(f64, RunResult)> = None;
    let mut speedup_at_8 = 1.0f64;
    for &threads in thread_sweep {
        let jsonl = if baseline.is_none() {
            trace_jsonl.clone()
        } else {
            None
        };
        let start = Instant::now();
        let (result, phases) = run_with_threads(scale, nodes, rounds, threads, jsonl);
        let wall = start.elapsed().as_secs_f64();
        let speedup = match &baseline {
            Some((base_wall, base_result)) => {
                base_result.assert_bit_identical(&result, &format!("threads 1 vs {threads}"));
                base_wall / wall
            }
            None => 1.0,
        };
        if threads == 8 {
            speedup_at_8 = speedup;
        }
        let accuracy = result.final_record().map_or(f64::NAN, |r| r.test_accuracy);
        let verdict = if baseline.is_some() {
            "bit-identical: yes"
        } else {
            "baseline"
        };
        println!(
            "{threads:>8} {wall:>10.2} {speedup:>8.2}x  {verdict} ({} records)",
            result.records.len()
        );
        println!(
            "         phases: propose {:.3}s | execute {:.3}s | commit {:.3}s",
            phases.propose_s, phases.execute_s, phases.commit_s
        );
        csv.push_str(&format!(
            "{threads},{cores},{wall:.4},{speedup:.4},{},{accuracy:.6}\n",
            result.rounds_run
        ));
        cases.push(
            BenchCase::from_result("ext_parallel", &format!("threads-{threads}"), wall, &result)
                .with_phases(phases),
        );
        if baseline.is_none() {
            baseline = Some((wall, result));
        }
    }
    jwins_bench::save_csv("ext_parallel", &csv);
    jwins_bench::report::append_cases(&cases);
    if smoke {
        println!("\nsmoke run: determinism asserted; the speedup table needs the full config.");
        return;
    }
    if cores >= 8 {
        assert!(
            speedup_at_8 > 1.5,
            "expected >1.5x speedup at 8 threads on an 8-core host, got {speedup_at_8:.2}x"
        );
        println!("\n8-thread speedup {speedup_at_8:.2}x (>1.5x required on multi-core hosts)");
    } else {
        println!(
            "\nHost has {cores} core(s): speedup is core-bound; the >1.5x check \
             applies on hosts with 8+ cores. Determinism was asserted regardless."
        );
    }
}
