//! Figure 3: the randomized cut-off in action.
//!
//! Left chart: the sharing percentages drawn by each node in a typical
//! round. Right chart: the average shared fraction across nodes over the
//! rounds, hovering around E[α] ≈ 34%.

use jwins::cutoff::AlphaDistribution;
use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 3 — randomized cut-off: per-node α and per-round mean",
        "nodes draw α independently from {10,15,20,25,30,40,100}%; round mean ≈ 34%",
    );
    let mut cfg = RunCfg::new(scale.rounds(35));
    cfg.record_alphas = true;
    cfg.eval_every = cfg.rounds; // metrics not the point here
    let result = run_cifar(scale, &Algo::Jwins(JwinsConfig::paper_default()), &cfg, 2);

    let mid = result.alpha_history.len() / 2;
    println!("\nshared fraction in round {mid} (left chart):");
    for (node, alpha) in result.alpha_history[mid].iter().enumerate() {
        println!(
            "  node {node:>3}: {:>5.1}%  {}",
            alpha * 100.0,
            "#".repeat((alpha * 40.0) as usize)
        );
    }

    println!("\naverage shared fraction over rounds (right chart):");
    let mut csv = String::from("round,mean_alpha\n");
    let mut overall = 0.0;
    for (round, alphas) in result.alpha_history.iter().enumerate() {
        let mean = alphas.iter().sum::<f64>() / alphas.len() as f64;
        overall += mean;
        csv.push_str(&format!("{round},{mean}\n"));
        if round % (result.alpha_history.len() / 10).max(1) == 0 {
            println!("  round {round:>4}: mean α {:>5.1}%", mean * 100.0);
        }
    }
    overall /= result.alpha_history.len() as f64;
    save_csv("fig3_cutoff", &csv);

    let expected = AlphaDistribution::paper_default().mean();
    println!("\npaper-vs-measured:");
    println!(
        "  paper: average sharing percentage ≈ {:.0}% across rounds",
        expected * 100.0
    );
    println!(
        "  here:  {:.1}% (|Δ| = {:.1} pp) => {}",
        overall * 100.0,
        (overall - expected).abs() * 100.0,
        if (overall - expected).abs() < 0.05 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
