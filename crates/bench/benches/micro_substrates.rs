//! Criterion microbenchmarks of every substrate on the JWINS hot path:
//! wavelet transforms (by family and depth), FFT, entropy coders, float
//! codecs, TopK selection and gossip mixing. These quantify the design
//! choices DESIGN.md §7 calls out (wavelet family, metadata codec, value
//! codec).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use jwins::average::PartialAverager;
use jwins::sparsify::top_k_indices;
use jwins_codec::float::{FloatCodec, RawFloatCodec, XorFloatCodec};
use jwins_codec::quantize::Qsgd;
use jwins_codec::sparse::{IndexCodec, SparseVecCodec, ValueCodec};
use jwins_codec::{delta, lz};
use jwins_fourier::fft_real;
use jwins_topology::{gen, weights::MetropolisWeights};
use jwins_wavelet::{Dwt, Wavelet};

const DIM: usize = 65_536;

fn model_vector(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.013).sin() * 0.3).collect()
}

fn bench_wavelet(c: &mut Criterion) {
    let x = model_vector(DIM);
    let mut group = c.benchmark_group("wavelet");
    group.sample_size(20);
    for name in ["haar", "sym2", "db4", "sym8"] {
        let dwt = Dwt::new(Wavelet::by_name(name).unwrap(), 4).unwrap();
        group.bench_with_input(BenchmarkId::new("forward_64k", name), &dwt, |b, dwt| {
            b.iter(|| black_box(dwt.forward(&x)));
        });
    }
    let dwt = Dwt::new(Wavelet::sym2(), 4).unwrap();
    let coeffs = dwt.forward(&x);
    group.bench_function("inverse_64k_sym2", |b| {
        b.iter(|| black_box(dwt.inverse(&coeffs).unwrap()));
    });
    for levels in [1usize, 2, 4, 6] {
        let dwt = Dwt::new(Wavelet::sym2(), levels).unwrap();
        group.bench_with_input(
            BenchmarkId::new("forward_64k_levels", levels),
            &dwt,
            |b, dwt| {
                b.iter(|| black_box(dwt.forward(&x)));
            },
        );
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let x = model_vector(DIM);
    let x_odd = model_vector(DIM - 1); // Bluestein path
    let mut group = c.benchmark_group("fft");
    group.sample_size(20);
    group.bench_function("radix2_64k", |b| b.iter(|| black_box(fft_real(&x))));
    group.bench_function("bluestein_64k-1", |b| {
        b.iter(|| black_box(fft_real(&x_odd)))
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let indices: Vec<u32> = (0..DIM as u32 / 10).map(|i| i * 10).collect();
    let values: Vec<f32> = model_vector(indices.len());
    let mut group = c.benchmark_group("codec");
    group.sample_size(30);
    group.bench_function("elias_gamma_encode_6k_indices", |b| {
        b.iter(|| black_box(delta::encode_gamma(&indices).unwrap()));
    });
    let encoded = delta::encode_gamma(&indices).unwrap();
    group.bench_function("elias_gamma_decode_6k_indices", |b| {
        b.iter(|| black_box(delta::decode_gamma(&encoded, indices.len()).unwrap()));
    });
    group.bench_function("xor_float_encode_6k", |b| {
        b.iter(|| black_box(XorFloatCodec.encode(&values)));
    });
    group.bench_function("raw_float_encode_6k", |b| {
        b.iter(|| black_box(RawFloatCodec.encode(&values)));
    });
    for (name, codec) in [
        (
            "gamma+xor",
            SparseVecCodec::new(IndexCodec::EliasGammaDelta, ValueCodec::Xor),
        ),
        (
            "raw+raw",
            SparseVecCodec::new(IndexCodec::RawU32, ValueCodec::Raw),
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new("sparse_roundtrip_6k", name),
            &codec,
            |b, codec| {
                b.iter(|| {
                    let enc = codec.encode(&indices, &values).unwrap();
                    black_box(codec.decode(enc.as_bytes()).unwrap())
                });
            },
        );
    }
    // LZ77 on the two streams the Figure-9 discussion contrasts: a
    // delta-coded index array (dictionary-friendly) and raw float payload
    // bytes (dictionary-hostile).
    let delta_bytes: Vec<u8> = indices
        .iter()
        .scan(0u32, |prev, &i| {
            let d = i - *prev;
            *prev = i;
            Some(d.to_le_bytes())
        })
        .flatten()
        .collect();
    group.bench_function("lz77_compress_index_deltas", |b| {
        b.iter(|| black_box(lz::compress(&delta_bytes)));
    });
    let float_bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    group.bench_function("lz77_compress_float_payload", |b| {
        b.iter(|| black_box(lz::compress(&float_bytes)));
    });
    let packed = lz::compress(&delta_bytes);
    group.bench_function("lz77_decompress_index_deltas", |b| {
        b.iter(|| black_box(lz::decompress(&packed).unwrap()));
    });

    let qsgd = Qsgd::new(255);
    group.bench_function("qsgd_encode_6k", |b| {
        let mut s = 1u64;
        b.iter(|| {
            black_box(qsgd.encode(&values, || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as f32 / (1u64 << 24) as f32
            }))
        });
    });
    group.finish();
}

fn bench_peer_sampling(c: &mut Criterion) {
    use jwins_topology::dynamic::TopologyProvider;
    use jwins_topology::peer_sampling::{PeerSampling, PeerSamplingConfig};
    let mut group = c.benchmark_group("peer_sampling");
    group.sample_size(20);
    group.bench_function("cyclon_round_96_nodes", |b| {
        let provider = PeerSampling::new(96, PeerSamplingConfig::default(), 3);
        let mut round = 0usize;
        b.iter(|| {
            // Sequential rounds hit the incremental path (one shuffle each).
            round += 1;
            black_box(provider.topology(round))
        });
    });
    group.finish();
}

fn bench_power_gossip_kernels(c: &mut Criterion) {
    use jwins::strategies::{PowerGossip, PowerGossipConfig};
    use jwins::strategy::ShareStrategy;
    let mut group = c.benchmark_group("power_gossip");
    group.sample_size(20);
    // One full make_outbound over 4 edges at 64k params (256x256 matrix).
    let params = model_vector(DIM);
    group.bench_function("make_outbound_64k_4edges_rank1", |b| {
        let mut s = PowerGossip::new(PowerGossipConfig::global(1), 0, 7);
        s.init(&params);
        let mut round = 0usize;
        b.iter(|| {
            let out = s.make_outbound(round, &params, &[1, 2, 3, 4]).unwrap();
            let next = s.aggregate(round, &params, 0.5, &[]).unwrap();
            round += 1;
            black_box((out, next))
        });
    });
    group.finish();
}

fn bench_selection_and_mixing(c: &mut Criterion) {
    let scores = model_vector(DIM);
    let mut group = c.benchmark_group("selection");
    group.sample_size(30);
    for frac in [10usize, 37] {
        let k = DIM * frac / 100;
        group.bench_with_input(BenchmarkId::new("topk_64k", frac), &k, |b, &k| {
            b.iter(|| black_box(top_k_indices(&scores, k)));
        });
    }
    let own = model_vector(DIM);
    let indices: Vec<u32> = (0..DIM as u32 / 3).map(|i| i * 3).collect();
    let sparse_vals = model_vector(indices.len());
    group.bench_function("partial_average_4_neighbours_64k", |b| {
        b.iter(|| {
            let mut avg = PartialAverager::new(&own, 0.2);
            for _ in 0..4 {
                avg.add_sparse(&indices, &sparse_vals, 0.2);
            }
            black_box(avg.finish())
        });
    });
    let graph = gen::random_regular(96, 4, 7).unwrap();
    group.bench_function("metropolis_weights_96x4", |b| {
        b.iter(|| black_box(MetropolisWeights::for_graph(&graph)));
    });
    group.bench_function("random_regular_96x4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(gen::random_regular(96, 4, seed).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wavelet,
    bench_fft,
    bench_codecs,
    bench_peer_sampling,
    bench_power_gossip_kernels,
    bench_selection_and_mixing
);
criterion_main!(benches);
