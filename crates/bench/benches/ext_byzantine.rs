//! Extension: Byzantine resilience of the sharing strategies under robust
//! aggregation.
//!
//! The paper's evaluation assumes every node follows the protocol. This
//! harness drops that assumption: a seeded fraction of a 32-node CIFAR-like
//! cluster sign-flips every parameter it shares (the classic gradient-
//! inversion attack), and the survivors defend — or don't — with a robust
//! aggregation rule wrapped around their strategy's decode output:
//!
//! - `none` (`Robust::None`): plain weighted averaging — the paper's mixing;
//! - `trimmed-mean` (`Robust::TrimmedMean`): drops the extreme tail on each
//!   coordinate and averages the survivors with renormalized weights;
//! - `median` (`Robust::Median`): coordinate-wise weighted median;
//! - `norm-clip` (`Robust::NormClip`): rescales any contribution whose
//!   deviation from the receiver's model exceeds a norm budget.
//!
//! For full-sharing and JWINS the table reports final accuracy, injected
//! message count and screened mass across attacker fractions — each rule
//! both honest (its mixing cost) and attacked (its screening power) — and
//! asserts the headline claim on full-sharing: at a seeded 25% sign-flip
//! attack, trimmed-mean and median hold ≥ 0.9× of their own honest
//! baseline's final accuracy while plain averaging collapses below 0.9× of
//! its. The JWINS rows are informative: its sparse, per-node energy-ranked
//! wavelet shares leave most coefficients covered by too few neighbours
//! for a coordinate-wise statistic to screen, so the defense does not
//! transfer — a measured limitation, printed but not asserted. A final
//! pass re-runs one attacked, defended configuration at 1/2/8 worker
//! threads and asserts bit-identical results — the adversarial layer
//! preserves the determinism contract.
//!
//! `JWINS_SMOKE=1` shrinks the sweep (16 nodes, 25% fraction only) for the
//! CI `bench-smoke` job, which also collects the structured results via
//! `JWINS_BENCH_JSON` (see `jwins_bench::report`).

use jwins::cutoff::AlphaDistribution;
use jwins::metrics::RunResult;
use jwins::strategies::JwinsConfig;
use jwins_adversary::{AttackBehavior, AttackPlan, Robust};
use jwins_bench::report::BenchCase;
use jwins_bench::{banner, run_cifar_n, save_csv, Algo, RunCfg, Scale};
use std::time::Instant;

fn sign_flip(fraction: f64) -> AttackPlan {
    AttackPlan::RandomFraction {
        fraction,
        from_s: 0.0,
        until_s: f64::INFINITY,
        behavior: AttackBehavior::SignFlip,
    }
}

fn rule_label(rule: Robust) -> String {
    match rule {
        Robust::None => "none".into(),
        Robust::TrimmedMean { trim } => format!("trimmed-mean@{trim:.2}"),
        Robust::Median => "median".into(),
        Robust::NormClip { tau } => format!("norm-clip@{tau:.1}"),
        _ => "unknown".into(),
    }
}

/// Cluster sizing shared by every run of the sweep.
#[derive(Clone, Copy)]
struct Sizing {
    scale: Scale,
    nodes: usize,
    degree: usize,
    rounds: usize,
}

fn run_once(
    sz: Sizing,
    algo: &Algo,
    attack: AttackPlan,
    robust: Robust,
    threads: usize,
) -> RunResult {
    let mut cfg = RunCfg::new(sz.rounds);
    cfg.eval_every = sz.rounds;
    // A per-round re-randomized graph (as in the paper's Figure-7 regime):
    // on a static graph a node unlucky enough to draw more attackers than
    // the trim depth is poisoned chronically; re-randomizing makes the
    // exposure transient, which is the regime robust rules are built for.
    cfg.dynamic_topology = true;
    cfg.attack = attack;
    cfg.robust = robust;
    cfg.threads = threads;
    run_cifar_n(sz.scale, sz.nodes, sz.degree, algo, &cfg, 2)
}

fn main() {
    let scale = Scale::from_env();
    let smoke = jwins_bench::smoke();
    banner(
        "ext_byzantine — sign-flip attackers vs robust aggregation",
        "at a seeded 25% sign-flip attack, trimmed-mean and median hold \
         >= 0.9x of the honest final accuracy while plain averaging collapses",
    );
    let (nodes, degree, rounds) = if smoke {
        (16, 10, 14)
    } else {
        (32, 14, scale.rounds(20))
    };
    let sz = Sizing {
        scale,
        nodes,
        degree,
        rounds,
    };
    let fractions: &[f64] = if smoke { &[0.25] } else { &[0.125, 0.25] };
    let rules: &[Robust] = if smoke {
        &[
            Robust::None,
            Robust::TrimmedMean { trim: 0.45 },
            Robust::Median,
        ]
    } else {
        &[
            Robust::None,
            Robust::TrimmedMean { trim: 0.45 },
            Robust::Median,
            Robust::NormClip { tau: 1.0 },
        ]
    };
    let algos = [
        Algo::Full,
        Algo::Jwins(JwinsConfig::with_alpha(AlphaDistribution::budget_20())),
    ];
    println!(
        "{nodes} nodes ({degree}-regular), {rounds} rounds, fractions {fractions:?}{}\n",
        if smoke { " [smoke]" } else { "" }
    );

    println!(
        "{:<18} {:<10} {:<18} {:>8} {:>10} {:>12}",
        "algorithm", "attack", "aggregation", "acc", "injected", "mass-clipped"
    );
    let mut csv = String::from(
        "algo,attacker_fraction,rule,final_accuracy,attacks_injected,mass_clipped,wall_s\n",
    );
    let mut cases = Vec::new();
    // (algo index, fraction, rule) -> final accuracy, for the assertions.
    let mut acc = std::collections::BTreeMap::new();
    for (ai, algo) in algos.iter().enumerate() {
        // Honest baselines for every rule — the attacked run of a rule is
        // judged against the same rule's honest accuracy, isolating attack
        // damage from the rule's own mixing cost.
        let honest_and_attacked = std::iter::once(0.0).chain(fractions.iter().copied());
        for (fraction, rule) in honest_and_attacked.flat_map(|f| rules.iter().map(move |&r| (f, r)))
        {
            let attack = if fraction > 0.0 {
                sign_flip(fraction)
            } else {
                AttackPlan::None
            };
            let start = Instant::now();
            let result = run_once(sz, algo, attack, rule, 0);
            let wall = start.elapsed().as_secs_f64();
            let attack_label = if fraction > 0.0 {
                format!("flip@{:.0}%", fraction * 100.0)
            } else {
                "honest".into()
            };
            let case = BenchCase::from_result(
                "ext_byzantine",
                &format!("{}/{}/{}", algo.label(), attack_label, rule_label(rule)),
                wall,
                &result,
            );
            let last = result.final_record().expect("evaluated");
            println!(
                "{:<18} {:<10} {:<18} {:>7.1}% {:>10} {:>12.3}",
                algo.label(),
                attack_label,
                rule_label(rule),
                last.test_accuracy * 100.0,
                last.attacks_injected,
                last.mass_clipped,
            );
            csv.push_str(&format!(
                "{},{:.3},{},{:.4},{},{:.4},{:.3}\n",
                algo.label(),
                fraction,
                rule_label(rule),
                last.test_accuracy,
                last.attacks_injected,
                last.mass_clipped,
                wall
            ));
            cases.push(case);
            acc.insert(
                (ai, (fraction * 1000.0) as u64, rule_label(rule)),
                last.clone(),
            );
        }
    }
    save_csv("ext_byzantine", &csv);
    jwins_bench::report::append_cases(&cases);

    // Headline claim at the 25% sign-flip point, asserted on full-sharing
    // (dense shares: every coordinate sees every neighbour, the regime
    // coordinate-wise screening is built for). Each rule's attacked run is
    // judged against its own honest baseline. The JWINS rows are reported
    // but not asserted: its wavelet shares are sparse and energy-ranked
    // per node, so most coefficients arrive from too few neighbours for a
    // per-coordinate statistic to screen — an observed limitation of
    // coordinate-wise defenses under sparse sharing, not a harness bug.
    let ai = 0usize;
    let trimmed_rule = rule_label(Robust::TrimmedMean { trim: 0.45 });
    let honest_none = acc[&(ai, 0, rule_label(Robust::None))].test_accuracy;
    let plain = acc[&(ai, 250, rule_label(Robust::None))].test_accuracy;
    let honest_trimmed = acc[&(ai, 0, trimmed_rule.clone())].test_accuracy;
    let trimmed = &acc[&(ai, 250, trimmed_rule)];
    let honest_median = acc[&(ai, 0, rule_label(Robust::Median))].test_accuracy;
    let median = &acc[&(ai, 250, rule_label(Robust::Median))];
    assert!(
        honest_none > 0.5 && honest_trimmed > 0.5 && honest_median > 0.5,
        "honest baselines learned nothing: none {honest_none:.3}, \
         trimmed {honest_trimmed:.3}, median {honest_median:.3}"
    );
    assert!(
        trimmed.attacks_injected > 0 && trimmed.mass_clipped > 0.0,
        "the defended run saw no attack traffic"
    );
    assert!(
        plain < 0.9 * honest_none,
        "plain averaging survived the attack ({plain:.3} >= 0.9 x {honest_none:.3}) — \
         the scenario no longer discriminates"
    );
    assert!(
        trimmed.test_accuracy >= 0.9 * honest_trimmed,
        "trimmed-mean fell to {:.3} < 0.9 x its honest baseline {honest_trimmed:.3}",
        trimmed.test_accuracy
    );
    assert!(
        median.test_accuracy >= 0.9 * honest_median,
        "median fell to {:.3} < 0.9 x its honest baseline {honest_median:.3}",
        median.test_accuracy
    );
    println!(
        "\nfull-sharing honest/attacked: none {:.1}%/{:.1}%, trimmed-mean {:.1}%/{:.1}%, \
         median {:.1}%/{:.1}%",
        honest_none * 100.0,
        plain * 100.0,
        honest_trimmed * 100.0,
        trimmed.test_accuracy * 100.0,
        honest_median * 100.0,
        median.test_accuracy * 100.0
    );

    // Determinism: the attacked, defended run is bit-identical across
    // worker-thread counts (threads is a pure performance knob).
    let reference = run_once(
        sz,
        &algos[0],
        sign_flip(0.25),
        Robust::TrimmedMean { trim: 0.45 },
        1,
    );
    for threads in [2usize, 8] {
        let other = run_once(
            sz,
            &algos[0],
            sign_flip(0.25),
            Robust::TrimmedMean { trim: 0.45 },
            threads,
        );
        reference.assert_bit_identical(&other, &format!("threads=1 vs threads={threads}"));
    }
    println!("\ndeterminism: attacked run bit-identical at 1/2/8 worker threads");
}
