//! Extension: node churn resilience.
//!
//! The paper claims JWINS is "more memory-efficient, and flexible to nodes
//! leaving and joining" than replica-based error feedback (§V), but never
//! runs that experiment. This harness does: the CIFAR-like workload at
//! matched ~20% communication budgets under increasing per-round dropout.
//! CHOCO-SGD's neighbour aggregate `s_i` silently assumes every neighbour's
//! compressed difference arrives every round, so missed rounds corrupt its
//! gossip state; JWINS and full-sharing renormalize over whoever actually
//! showed up.

use jwins::cutoff::AlphaDistribution;
use jwins::strategies::{ChocoConfig, JwinsConfig};
use jwins_bench::{banner, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Extension — churn resilience (paper §V claim, not evaluated there)",
        "JWINS and full-sharing degrade gracefully under dropout; CHOCO's error feedback does not",
    );
    let rounds = scale.rounds(100);
    // Matched ~20% budgets: JWINS's Figure-6 two-point α distribution
    // {100%: 0.1, 10%: 0.9} vs CHOCO at fraction 0.2 with the paper's γ.
    let algos = [
        Algo::Full,
        Algo::Jwins(JwinsConfig::with_alpha(AlphaDistribution::budget_20())),
        Algo::Choco(ChocoConfig::budget_20()),
    ];
    let dropouts = [0.0, 0.2, 0.4];

    let mut csv = String::from("algo,dropout,final_accuracy\n");
    let mut by_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "algorithm", "p=0.0", "p=0.2", "p=0.4"
    );
    for (ai, algo) in algos.iter().enumerate() {
        let mut row = format!("{:<18}", algo.label());
        for &p in &dropouts {
            let mut cfg = RunCfg::new(rounds);
            cfg.eval_every = rounds;
            cfg.dropout = (p > 0.0).then_some(p);
            let result = run_cifar(scale, algo, &cfg, 2);
            let acc = result.final_record().expect("evaluated").test_accuracy;
            row.push_str(&format!(" {:>9.1}%", acc * 100.0));
            csv.push_str(&format!("{},{p},{acc:.4}\n", algo.label()));
            by_algo[ai].push(acc);
        }
        println!("{row}");
    }
    save_csv("ext_churn", &csv);

    // Accuracy lost between no churn and 40% dropout, per algorithm.
    let drop_of = |accs: &[f64]| accs[0] - accs[2];
    let jwins_drop = drop_of(&by_algo[1]);
    let choco_drop = drop_of(&by_algo[2]);
    println!("\npaper-vs-measured:");
    println!("  paper: claims flexibility to leave/join for JWINS (no experiment)");
    println!(
        "  here:  40% dropout costs JWINS {:.1}pp and CHOCO {:.1}pp => {}",
        jwins_drop * 100.0,
        choco_drop * 100.0,
        if choco_drop > jwins_drop {
            "SUPPORTED (JWINS degrades less than CHOCO under churn)"
        } else {
            "NOT OBSERVED at this scale"
        }
    );
}
