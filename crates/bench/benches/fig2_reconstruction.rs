//! Figure 2: cumulative reconstruction error of sparsified models.
//!
//! Paper setup: single-node CIFAR-10 training with GN-LeNet at a 10%
//! communication budget; after each epoch the model is sparsified in three
//! domains (wavelet / FFT / random sampling in parameter space) and the MSE
//! against the uncompressed model is accumulated. The paper finds
//! **wavelet < FFT < random sampling**, which motivates JWINS's choice of
//! DWT.

use jwins::sparsify::top_k_indices;
use jwins_bench::{banner, save_csv, Scale};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fourier::{fft_real, ifft_to_real, Complex};
use jwins_nn::models::gn_lenet;
use jwins_nn::Model;
use jwins_wavelet::{Dwt, Wavelet, WaveletCoeffs};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn mse(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (f64::from(*x) - f64::from(*y)).powi(2))
        .sum::<f64>()
        / a.len() as f64
}

fn wavelet_sparsify(x: &[f32], keep: usize) -> Vec<f32> {
    let dwt = Dwt::new(Wavelet::sym2(), 4).expect("levels > 0");
    let coeffs = dwt.forward(x);
    let idx = top_k_indices(&coeffs.data, keep);
    let mut sparse = vec![0.0f32; coeffs.data.len()];
    for &i in &idx {
        sparse[i as usize] = coeffs.data[i as usize];
    }
    let wrapped = WaveletCoeffs::from_parts(sparse, coeffs.layout().clone()).expect("layout");
    dwt.inverse(&wrapped).expect("layout matches")
}

fn fft_sparsify(x: &[f32], keep: usize) -> Vec<f32> {
    let spec = fft_real(x);
    let mags: Vec<f32> = spec.iter().map(|c| c.abs() as f32).collect();
    let idx = top_k_indices(&mags, keep);
    let mut sparse = vec![Complex::ZERO; spec.len()];
    for &i in &idx {
        sparse[i as usize] = spec[i as usize];
    }
    ifft_to_real(&sparse)
}

fn random_sparsify(x: &[f32], keep: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let idx = rand::seq::index::sample(rng, x.len(), keep);
    let mut out = vec![0.0f32; x.len()];
    for i in idx {
        out[i] = x[i];
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 2 — cumulative reconstruction error by sparsification domain",
        "wavelet loses least information, then FFT, then random sampling (10% budget)",
    );
    let epochs = scale.rounds(16).min(32);
    let img = ImageConfig::cifar_small();
    let data = cifar_like(&img, 1, 1, 7);
    let train: Vec<_> = data.node_train[0].clone();
    let mut model = gn_lenet(img.channels, img.height, img.width, img.classes, 8, 7);
    let mut params = model.params();
    let keep = params.len() / 10;
    println!(
        "model: GN-LeNet, {} parameters; budget 10% = {keep} coefficients; {epochs} epochs",
        params.len()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut cum = [0.0f64; 3]; // wavelet, fft, random
    let mut csv = String::from("epoch,wavelet,fft,random_sampling\n");
    println!(
        "\n{:>5}  {:>12}  {:>12}  {:>12}",
        "epoch", "wavelet", "fft", "random"
    );
    let steps_per_epoch = (train.len() / 8).max(1);
    for epoch in 1..=epochs {
        for step in 0..steps_per_epoch {
            let lo = (step * 8) % train.len();
            let hi = (lo + 8).min(train.len());
            model.set_params(&params);
            let (_, grad) = model.loss_and_grad(&train[lo..hi]);
            for (p, g) in params.iter_mut().zip(&grad) {
                *p -= 0.05 * g;
            }
        }
        cum[0] += mse(&params, &wavelet_sparsify(&params, keep));
        cum[1] += mse(&params, &fft_sparsify(&params, keep));
        cum[2] += mse(&params, &random_sparsify(&params, keep, &mut rng));
        println!(
            "{epoch:>5}  {:>12.6}  {:>12.6}  {:>12.6}",
            cum[0], cum[1], cum[2]
        );
        csv.push_str(&format!("{epoch},{},{},{}\n", cum[0], cum[1], cum[2]));
    }
    save_csv("fig2_reconstruction", &csv);
    println!("\npaper-vs-measured:");
    println!("  paper: wavelet < FFT < random sampling (cumulative MSE ordering)");
    println!(
        "  here:  wavelet {:.4} {} FFT {:.4} {} random {:.4}  => ordering {}",
        cum[0],
        if cum[0] < cum[1] { "<" } else { ">!" },
        cum[1],
        if cum[1] < cum[2] { "<" } else { ">!" },
        cum[2],
        if cum[0] < cum[1] && cum[1] < cum[2] {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
