//! Extension: synchronous vs asynchronous time-to-accuracy on a
//! heterogeneous cluster.
//!
//! The paper measures wall-clock on a bandwidth-constrained cluster where
//! every round waits for the slowest node (§IV-C-3). The event-driven
//! runtime removes that barrier: nodes gossip with whatever neighbour
//! models have *arrived*. This experiment quantifies the trade on a
//! straggler cluster (25% of nodes 4× slower, 100 Mbit/s links):
//!
//! - **barrier**: every round costs the straggler's compute plus the full
//!   transfer, but all mixed information is fresh;
//! - **async**: fast nodes keep their own pace and mix slightly stale
//!   models, finishing the same round budget in far less simulated time.
//!
//! Protocol (per strategy — full-sharing, JWINS, CHOCO-SGD, and PowerGossip
//! now that its per-edge state is round-versioned and async-safe): a barrier
//! baseline run fixes a target accuracy (90% of its final accuracy); both
//! substrates then run to that target and report simulated time, rounds and
//! bytes at the moment it is reached, plus the async run's mean staleness.
//!
//! `JWINS_SMOKE=1` shrinks the round budget for the CI `bench-smoke` job,
//! which also collects the structured results via `JWINS_BENCH_JSON` (see
//! `jwins_bench::report`).

use jwins::config::ExecutionMode;
use jwins::strategies::{ChocoConfig, JwinsConfig, PowerGossipConfig};
use jwins_bench::report::BenchCase;
use jwins_bench::{banner, fmt_bytes, run_cifar, save_csv, Algo, RunCfg, Scale};
use jwins_sim::HeterogeneityProfile;
use std::time::Instant;

/// 25% of nodes 4× slower; 100 Mbit/s, 5 ms links (the sync TimeModel's
/// default link, so the two substrates price bytes identically).
fn straggler_cluster() -> HeterogeneityProfile {
    HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 100.0e6 / 8.0)
}

fn main() {
    let scale = Scale::from_env();
    let smoke = jwins_bench::smoke();
    banner(
        "ext_async — sync vs async time-to-accuracy under stragglers",
        "asynchronous gossip reaches the target in less simulated time by \
         not waiting for the slowest node",
    );
    let rounds = if smoke { 8 } else { scale.rounds(60) };
    if smoke {
        println!("[smoke] reduced to {rounds} rounds");
    }
    let mut csv = String::from(
        "strategy,mode,rounds_run,final_accuracy,target_accuracy,\
         time_to_target_s,bytes_per_node_at_target,mean_staleness_s\n",
    );
    let algos = [
        ("full-sharing", Algo::Full),
        ("jwins", Algo::Jwins(JwinsConfig::paper_default())),
        ("choco@20%", Algo::Choco(ChocoConfig::budget_20())),
        // The low-rank per-edge baseline: runnable under async gossip since
        // its warm starts became round-versioned.
        (
            "power-gossip@r1",
            Algo::PowerGossip(PowerGossipConfig::global(1)),
        ),
    ];
    let mut cases = Vec::new();
    for (label, algo) in algos {
        // Phase 1: barrier baseline fixes the target for this strategy.
        let mut base = RunCfg::new(rounds);
        base.eval_every = (rounds / 15).max(2);
        let baseline = run_cifar(scale, &algo, &base, 2);
        let target = (baseline.final_accuracy() * 0.9).min(0.99);
        println!(
            "\n[{label}] baseline accuracy {:.3} -> target {:.3}",
            baseline.final_accuracy(),
            target
        );
        // Phase 2: both substrates run to the target.
        for (mode_name, execution, heterogeneity) in [
            (
                "sync-barrier",
                ExecutionMode::BulkSynchronous,
                HeterogeneityProfile::default(),
            ),
            (
                "async-gossip",
                ExecutionMode::EventDriven,
                straggler_cluster(),
            ),
        ] {
            let mut cfg = RunCfg::new(rounds);
            cfg.eval_every = (rounds / 15).max(2);
            cfg.target_accuracy = Some(target);
            cfg.execution = execution;
            cfg.heterogeneity = heterogeneity;
            if execution == ExecutionMode::BulkSynchronous {
                // The barrier waits for the slowest node: on this cluster a
                // round's compute is the straggler's 4× slowdown.
                cfg.time_model = Some(jwins_net::TimeModel::edge_100mbit(0.05 * 4.0));
            }
            let start = Instant::now();
            let result = run_cifar(scale, &algo, &cfg, 2);
            let wall = start.elapsed().as_secs_f64();
            cases.push(BenchCase::from_result(
                "ext_async",
                &format!("{label}/{mode_name}"),
                wall,
                &result,
            ));
            let last = result.final_record().expect("at least one evaluation");
            let (time_s, bytes) = result
                .reached_target
                .map_or((f64::NAN, f64::NAN), |h| (h.sim_time_s, h.bytes_per_node));
            println!(
                "  {mode_name:<14} rounds {:>4}  acc {:.3}  t_target {:>9.1}s  \
                 bytes/node {:>10}  staleness {:>7.3}s",
                result.rounds_run,
                last.test_accuracy,
                time_s,
                if bytes.is_nan() {
                    "-".into()
                } else {
                    fmt_bytes(bytes)
                },
                last.mean_staleness_s,
            );
            csv.push_str(&format!(
                "{label},{mode_name},{},{:.6},{:.6},{:.3},{:.0},{:.4}\n",
                result.rounds_run, last.test_accuracy, target, time_s, bytes, last.mean_staleness_s,
            ));
        }
    }
    save_csv("ext_async", &csv);
    jwins_bench::report::append_cases(&cases);
    println!(
        "\nNote: the barrier rows charge TimeModel::round_seconds per round \
         (compute + latency + slowest transfer); the async rows charge the \
         event clock of the straggler cluster above."
    );
}
