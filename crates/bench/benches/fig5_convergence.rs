//! Figure 5: run-until-target-accuracy vs random sampling.
//!
//! Protocol: run random sampling for a long budget, take its best accuracy
//! as the target, then run JWINS and full-sharing until they reach it. The
//! paper reports JWINS arriving 777–4305 rounds earlier than random sampling
//! and pushing 1.5–4× fewer bytes.

use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, fmt_bytes, run_cifar, save_csv, Algo, RunCfg, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 5 — rounds and bytes to reach random sampling's best accuracy",
        "JWINS reaches the target in fewer rounds with 1.5–4× fewer bytes",
    );
    // Phase 1: long random-sampling run defines the target.
    let long_rounds = scale.rounds(170);
    let mut cfg = RunCfg::new(long_rounds);
    cfg.eval_every = (long_rounds / 20).max(5);
    let random = run_cifar(scale, &Algo::Random(0.37), &cfg, 2);
    let target = random
        .records
        .iter()
        .map(|r| r.test_accuracy)
        .fold(0.0f64, f64::max);
    let random_hit = random
        .records
        .iter()
        .find(|r| r.test_accuracy >= target)
        .expect("max exists");
    println!(
        "\ntarget accuracy (random sampling best): {:.1}% at round {} with {} per node",
        target * 100.0,
        random_hit.round + 1,
        fmt_bytes(random_hit.cum_bytes_per_node)
    );

    // Phase 2: run the competitors until they reach that accuracy.
    let mut rows = vec![(
        "random-sampling".to_owned(),
        Some((
            random_hit.round + 1,
            random_hit.cum_bytes_per_node,
            random_hit.sim_time_s,
        )),
    )];
    for algo in [Algo::Full, Algo::Jwins(JwinsConfig::paper_default())] {
        let mut cfg = RunCfg::new(long_rounds);
        cfg.eval_every = 5;
        cfg.target_accuracy = Some(target);
        let result = run_cifar(scale, &algo, &cfg, 2);
        save_csv(&format!("fig5_{}", algo.label()), &result.to_csv());
        rows.push((
            algo.label(),
            result
                .reached_target
                .map(|h| (h.round + 1, h.bytes_per_node, h.sim_time_s)),
        ));
    }
    println!(
        "\n{:<18} {:>10} {:>16} {:>12}",
        "ALGORITHM", "rounds", "bytes/node", "sim time"
    );
    let mut csv = String::from("algo,rounds_to_target,bytes_per_node,sim_time_s\n");
    for (name, hit) in &rows {
        match hit {
            Some((rounds, bytes, time)) => {
                println!(
                    "{name:<18} {rounds:>10} {:>16} {:>11.1}s",
                    fmt_bytes(*bytes),
                    time
                );
                csv.push_str(&format!("{name},{rounds},{bytes},{time}\n"));
            }
            None => {
                println!("{name:<18} {:>10}", "not reached");
                csv.push_str(&format!("{name},,,\n"));
            }
        }
    }
    save_csv("fig5_summary", &csv);

    println!("\npaper-vs-measured:");
    println!("  paper: JWINS needs fewer rounds than random sampling and 1.5–4x fewer bytes");
    let rs = rows[0].1.expect("random reached its own best");
    if let Some(jw) = rows
        .iter()
        .find(|(n, _)| n == "jwins")
        .and_then(|(_, h)| *h)
    {
        let byte_ratio = rs.1 / jw.1.max(1.0);
        let fewer_rounds = rs.0 as i64 - jw.0 as i64;
        println!(
            "  here:  JWINS {} rounds earlier ({} vs {}), {:.1}x fewer bytes => {}",
            fewer_rounds,
            jw.0,
            rs.0,
            byte_ratio,
            if jw.0 <= rs.0 && byte_ratio > 1.0 {
                "REPRODUCED"
            } else {
                "NOT reproduced"
            }
        );
    } else {
        println!("  here:  JWINS did not reach the target within the budget => NOT reproduced");
    }
}
