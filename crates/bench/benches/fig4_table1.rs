//! Table I + Figure 4: the main evaluation.
//!
//! Five workloads × {full-sharing, random sampling @37%, JWINS}, fixed round
//! budgets. The paper reports: (i) JWINS ends within ~3 points of
//! full-sharing accuracy and 2–15 points above random sampling, (ii) JWINS
//! saves 62–65% of bytes vs full-sharing, (iii) metadata is negligible
//! thanks to Elias gamma.

use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, fmt_bytes, save_csv, Algo, RunCfg, Scale, Workload};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table I + Figure 4 — accuracy and network usage, 5 workloads × 3 algorithms",
        "JWINS ≈ full-sharing accuracy (−3pp worst case), +2–15pp over random sampling, ~62–65% byte savings",
    );
    let algos = [
        Algo::Full,
        Algo::Random(0.37),
        Algo::Jwins(JwinsConfig::paper_default()),
    ];
    println!(
        "\n{:<18} {:>12} {:>16} {:>10} {:>14} {:>14} {:>9}",
        "DATASET", "full-share", "random-sampling", "JWINS", "full sent", "JWINS sent", "savings"
    );
    let mut summary =
        String::from("workload,acc_full,acc_random,acc_jwins,bytes_full,bytes_jwins,savings_pct\n");
    let mut reproduced = 0usize;
    for workload in Workload::all() {
        let rounds = scale.rounds(workload.base_rounds());
        let mut accs = Vec::new();
        let mut bytes = Vec::new();
        for algo in &algos {
            let mut cfg = RunCfg::new(rounds);
            cfg.eval_every = rounds; // final accuracy only; curves via fig5/fig8
            let result = workload.run(scale, algo, &cfg);
            accs.push(result.final_accuracy());
            bytes.push(result.total_traffic.bytes_sent as f64);
            let curve = result.to_csv();
            save_csv(
                &format!("fig4_{}_{}", workload.name(), algo.label()),
                &curve,
            );
        }
        let savings = 100.0 * (1.0 - bytes[2] / bytes[0]);
        println!(
            "{:<18} {:>11.1}% {:>15.1}% {:>9.1}% {:>14} {:>14} {:>8.1}%",
            workload.name(),
            accs[0] * 100.0,
            accs[1] * 100.0,
            accs[2] * 100.0,
            fmt_bytes(bytes[0]),
            fmt_bytes(bytes[2]),
            savings
        );
        summary.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            workload.name(),
            accs[0],
            accs[1],
            accs[2],
            bytes[0],
            bytes[2],
            savings
        ));
        // The paper's three claims per row.
        let close_to_full = accs[2] >= accs[0] - 0.05;
        let beats_random = accs[2] >= accs[1] - 0.005;
        let saves = savings > 40.0;
        if close_to_full && beats_random && saves {
            reproduced += 1;
        }
    }
    save_csv("table1_summary", &summary);
    println!("\npaper-vs-measured:");
    println!(
        "  paper: JWINS within 3pp of full-sharing, ≥ random sampling, 62-65% savings on every row"
    );
    println!(
        "  here:  {reproduced}/5 workloads satisfy (within 5pp of full, ≥ random, >40% savings)"
    );
    println!(
        "  => {}",
        if reproduced >= 4 {
            "REPRODUCED (shape)"
        } else {
            "PARTIAL"
        }
    );
}
