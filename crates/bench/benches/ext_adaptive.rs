//! Extension: per-layer adaptive importance scores (paper §VI future work).
//!
//! "An adaptive version of the importance score based on the parameter type
//! (CNN, RNN, FC) may be explored in depth." This harness explores the
//! first-order version: rescaling each layer's contribution to the JWINS
//! importance scores so small layers (biases, norms, the classifier head)
//! are not starved by magnitude-ranked TopK under tight budgets. The
//! FEMNIST-like LEAF CNN is used because its layer sizes span two orders of
//! magnitude.

use jwins::cutoff::AlphaDistribution;
use jwins::scaling::ScoreScaling;
use jwins::strategies::JwinsConfig;
use jwins_bench::{banner, run_femnist, save_csv, Algo, RunCfg, Scale};
use jwins_data::images::ImageConfig;
use jwins_nn::models::leaf_cnn;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Extension — adaptive per-layer importance scores (§VI future work)",
        "inverse-size scaling keeps small layers alive under tight budgets",
    );
    let rounds = scale.rounds(80);
    // The exact model run_femnist builds, constructed once to read its
    // per-layer parameter layout.
    let img = ImageConfig::femnist_small();
    let probe = leaf_cnn(img.channels, img.height, img.width, img.classes, 4, 24, 1);
    let sizes = probe.layer_param_sizes();
    let parameterized: Vec<usize> = sizes.iter().copied().filter(|&s| s > 0).collect();
    println!(
        "LEAF-CNN layer parameter sizes: {parameterized:?} (ratio max/min = {:.0}x)\n",
        *parameterized.iter().max().unwrap() as f64 / *parameterized.iter().min().unwrap() as f64
    );
    let inverse = ScoreScaling::inverse_size(&sizes).expect("valid layout");

    // Tight fixed budget exposes the starvation effect most clearly.
    let alpha = AlphaDistribution::Fixed(0.10);
    let variants = [
        ("jwins-uniform-scores", {
            let mut c = JwinsConfig::with_alpha(alpha.clone());
            c.randomized_cutoff = false;
            c
        }),
        ("jwins-inverse-size", {
            let mut c = JwinsConfig::with_alpha(alpha);
            c.randomized_cutoff = false;
            c.score_scaling = Some(inverse);
            c
        }),
    ];

    let mut csv = String::from("variant,final_accuracy,final_loss\n");
    let mut accs = Vec::new();
    for (name, config) in variants {
        let mut cfg = RunCfg::new(rounds);
        cfg.eval_every = rounds;
        let result = run_femnist(scale, &Algo::Jwins(config), &cfg);
        let last = result.final_record().expect("evaluated");
        println!(
            "{name:<24} accuracy {:>5.1}%  test loss {:.3}",
            last.test_accuracy * 100.0,
            last.test_loss
        );
        csv.push_str(&format!(
            "{name},{:.4},{:.4}\n",
            last.test_accuracy, last.test_loss
        ));
        accs.push(last.test_accuracy);
    }
    save_csv("ext_adaptive", &csv);

    println!("\npaper-vs-measured:");
    println!("  paper: proposes adaptive scores as future work (no numbers)");
    println!(
        "  here:  inverse-size scaling moves accuracy by {:+.1}pp at a 10% budget => {}",
        (accs[1] - accs[0]) * 100.0,
        if accs[1] >= accs[0] - 0.01 {
            "VIABLE (no loss; small layers protected)"
        } else {
            "COSTLY at this scale"
        }
    );
}
