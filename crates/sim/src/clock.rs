//! Integer-nanosecond virtual time.
//!
//! Discrete-event determinism demands a totally ordered, exactly
//! representable time axis. Floating-point accumulation (`t += dt`) makes
//! event order depend on summation order; nanosecond integers do not.

use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The end of the virtual time axis — the "no deadline" sentinel a
    /// transport drain accepts to mean "deliver everything that has ever
    /// been sent".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Converts seconds to virtual time, saturating at the axis end and
    /// clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimTime(0);
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimTime(u64::MAX)
        } else {
            SimTime(nanos.round() as u64)
        }
    }

    /// This instant as (possibly lossy) floating seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in seconds.
    #[must_use]
    pub fn after_secs(self, secs: f64) -> Self {
        SimTime(self.0.saturating_add(SimTime::from_secs_f64(secs).0))
    }

    /// Saturating addition of another time treated as a duration.
    #[must_use]
    pub fn plus(self, duration: SimTime) -> Self {
        SimTime(self.0.saturating_add(duration.0))
    }

    /// Saturating difference (`self - earlier`), useful for staleness.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

/// A monotone virtual clock: the "now" of one simulation actor or of the
/// global event loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past — the discrete-event invariant that time
    /// never runs backwards is a correctness property, not a recoverable
    /// error.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "virtual clock cannot run backwards");
        self.now = t;
    }

    /// Advances by `secs` seconds and returns the new now.
    pub fn advance_by_secs(&mut self, secs: f64) -> SimTime {
        self.now = self.now.after_secs(secs);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_to_nanosecond() {
        assert_eq!(SimTime::from_secs_f64(1.5).0, 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        let t = SimTime::from_secs_f64(0.05);
        assert!((t.as_secs_f64() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime(u64::MAX - 1);
        assert_eq!(t.after_secs(5.0), SimTime(u64::MAX));
        assert_eq!(SimTime(3).since(SimTime(10)), SimTime(0));
        assert_eq!(SimTime(10).since(SimTime(3)), SimTime(7));
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        c.advance_to(SimTime(5));
        c.advance_by_secs(1.0);
        assert_eq!(c.now(), SimTime(1_000_000_005));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_time_travel() {
        let mut c = VirtualClock::new();
        c.advance_to(SimTime(5));
        c.advance_to(SimTime(4));
    }
}
