//! Node lifecycle event kinds (crash/recover) and epoch bookkeeping.
//!
//! Fault injection needs two primitives from the simulation substrate: an
//! event vocabulary for a node leaving and re-entering the simulation, and a
//! way to *invalidate* the events a node had scheduled when it crashed
//! without scanning the queue. [`LifecycleTracker`] implements the standard
//! epoch trick: every crash bumps the node's epoch, scheduled events carry
//! the epoch they were created under, and an event whose epoch no longer
//! matches is stale and must be ignored by the interpreter. Like the rest of
//! this crate, nothing here knows about learning.

/// A node leaving or re-entering the simulation at some virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleEvent {
    /// The node dies abruptly: scheduled work is abandoned and its in-flight
    /// messages are lost.
    Crash {
        /// The crashing node.
        node: usize,
    },
    /// The node comes back up and may resume scheduling work.
    Recover {
        /// The recovering node.
        node: usize,
    },
}

impl LifecycleEvent {
    /// The node this event concerns.
    pub fn node(&self) -> usize {
        match *self {
            LifecycleEvent::Crash { node } | LifecycleEvent::Recover { node } => node,
        }
    }

    /// Whether this is a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, LifecycleEvent::Crash { .. })
    }
}

/// Per-node alive/epoch state driven by [`LifecycleEvent`]s.
///
/// # Epoch invariants
///
/// The epoch mechanism is what lets an interpreter cancel a crashed node's
/// scheduled events in O(1) without scanning the queue. It is sound only
/// under these rules, which the training engine (and any other interpreter)
/// must follow:
///
/// - every event scheduled for a node is stamped with [`Self::epoch`] *at
///   scheduling time*, and checked with [`Self::is_current`] *at execution
///   time*; a stale event must be an observable no-op;
/// - only [`Self::crash`] bumps the epoch. Recovery does **not**: no events
///   can be scheduled for a node while it is down, so the post-crash epoch
///   is already exclusively the recovered node's own;
/// - epochs are monotone per node and never reused, so a stale stamp can
///   never be mistaken for a current one;
/// - [`Self::crash`] on a dead node and [`Self::recover`] on a live one are
///   rejected (`false`) and change nothing — double faults cannot skip
///   epochs or skew the [`Self::crashes`]/[`Self::recoveries`] counters.
///
/// # Example
///
/// ```
/// use jwins_sim::LifecycleTracker;
///
/// let mut t = LifecycleTracker::new(2);
/// let stamp = t.epoch(1); // attach to events scheduled for node 1
/// assert!(t.crash(1));
/// assert!(!t.is_current(1, stamp), "pre-crash events are now stale");
/// assert!(t.recover(1));
/// assert!(t.is_alive(1));
/// ```
#[derive(Debug, Clone)]
pub struct LifecycleTracker {
    alive: Vec<bool>,
    epoch: Vec<u64>,
    crashes: u64,
    recoveries: u64,
}

impl LifecycleTracker {
    /// All `n` nodes alive at epoch 0.
    pub fn new(n: usize) -> Self {
        Self {
            alive: vec![true; n],
            epoch: vec![0; n],
            crashes: 0,
            recoveries: 0,
        }
    }

    /// Whether `node` is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// The node's current epoch — stamp it onto events scheduled for the
    /// node so [`Self::is_current`] can reject them after a crash.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn epoch(&self, node: usize) -> u64 {
        self.epoch[node]
    }

    /// Whether an event stamped with `epoch` is still valid for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_current(&self, node: usize, epoch: u64) -> bool {
        self.epoch[node] == epoch
    }

    /// Marks `node` crashed, invalidating all events carrying its previous
    /// epoch. Returns `false` (and changes nothing) if it was already down.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn crash(&mut self, node: usize) -> bool {
        if !self.alive[node] {
            return false;
        }
        self.alive[node] = false;
        self.epoch[node] += 1;
        self.crashes += 1;
        true
    }

    /// Marks `node` recovered. Returns `false` (and changes nothing) if it
    /// was already up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn recover(&mut self, node: usize) -> bool {
        if self.alive[node] {
            return false;
        }
        self.alive[node] = true;
        self.recoveries += 1;
        true
    }

    /// Applies a [`LifecycleEvent`]; returns whether it changed state.
    ///
    /// # Panics
    ///
    /// Panics if the event's node is out of range.
    pub fn apply(&mut self, event: LifecycleEvent) -> bool {
        match event {
            LifecycleEvent::Crash { node } => self.crash(node),
            LifecycleEvent::Recover { node } => self.recover(node),
        }
    }

    /// Total crashes applied so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Total recoveries applied so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The lowest-indexed node currently up, if any (deterministic re-sync
    /// source for warm-restart-free rejoins).
    pub fn first_alive(&self) -> Option<usize> {
        self.alive.iter().position(|&a| a)
    }

    /// Per-node alive flags, indexed by node id — the snapshot a
    /// liveness-aware topology layer consumes to rewire around dead nodes.
    pub fn alive_flags(&self) -> &[bool] {
        &self.alive
    }

    /// A monotone counter that changes on every crash *and* every recovery
    /// (`crashes + recoveries`). Two equal versions imply the same alive
    /// set, so it can key deterministic, epoch-dependent derivations (e.g.
    /// seeded topology repair) without hashing the flags themselves.
    pub fn version(&self) -> u64 {
        self.crashes + self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_on_crash_only() {
        let mut t = LifecycleTracker::new(3);
        let e = t.epoch(2);
        assert!(t.is_current(2, e));
        assert!(t.crash(2));
        assert!(!t.is_current(2, e));
        let e2 = t.epoch(2);
        assert!(t.recover(2));
        // Recovery does not bump the epoch: events scheduled while down
        // (there are none by construction) would still be the node's own.
        assert!(t.is_current(2, e2));
        assert_eq!(t.crashes(), 1);
        assert_eq!(t.recoveries(), 1);
    }

    #[test]
    fn double_crash_and_double_recover_are_rejected() {
        let mut t = LifecycleTracker::new(1);
        assert!(t.apply(LifecycleEvent::Crash { node: 0 }));
        assert!(!t.apply(LifecycleEvent::Crash { node: 0 }));
        assert!(t.apply(LifecycleEvent::Recover { node: 0 }));
        assert!(!t.apply(LifecycleEvent::Recover { node: 0 }));
        assert_eq!(t.crashes(), 1);
        assert_eq!(t.recoveries(), 1);
    }

    #[test]
    fn alive_flags_and_version_track_lifecycle() {
        let mut t = LifecycleTracker::new(3);
        assert_eq!(t.alive_flags(), &[true, true, true]);
        assert_eq!(t.version(), 0);
        t.crash(1);
        assert_eq!(t.alive_flags(), &[true, false, true]);
        assert_eq!(t.version(), 1);
        t.recover(1);
        assert_eq!(t.alive_flags(), &[true, true, true]);
        assert_eq!(t.version(), 2, "recovery also advances the version");
        // Rejected double faults leave the version untouched.
        t.recover(1);
        assert_eq!(t.version(), 2);
    }

    #[test]
    fn first_alive_skips_dead_nodes() {
        let mut t = LifecycleTracker::new(3);
        t.crash(0);
        assert_eq!(t.first_alive(), Some(1));
        t.crash(1);
        t.crash(2);
        assert_eq!(t.first_alive(), None);
    }

    #[test]
    fn event_accessors() {
        let c = LifecycleEvent::Crash { node: 4 };
        let r = LifecycleEvent::Recover { node: 4 };
        assert_eq!(c.node(), 4);
        assert_eq!(r.node(), 4);
        assert!(c.is_crash());
        assert!(!r.is_crash());
    }
}
