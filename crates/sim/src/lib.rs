//! Deterministic discrete-event simulation runtime.
//!
//! The paper's headline result is *wall-clock*, not just bytes: on a
//! bandwidth-constrained cluster JWINS reaches the target accuracy in 14 min
//! where random sampling needs 53 min (§IV-C-3). A single scalar time
//! formula under a bulk-synchronous barrier cannot express the mechanisms
//! behind such gaps — stragglers, heterogeneous links, and gossip that
//! proceeds without waiting. This crate supplies the missing substrate:
//!
//! - [`SimTime`]/[`VirtualClock`]: integer-nanosecond virtual time, so event
//!   ordering never depends on float rounding;
//! - [`EventQueue`]: a binary-heap scheduler with *seeded, stable*
//!   tie-breaking — equal-time events are ordered by caller priority, then a
//!   seeded hash, then insertion order, making every run a pure function of
//!   its seed;
//! - [`ComputeProfile`]/[`LinkProfile`]: per-node compute-speed and per-link
//!   latency/bandwidth models, so a message's transfer time is
//!   `latency + bytes / bandwidth` on *its* link and a straggler's round
//!   takes proportionally longer;
//! - [`HeterogeneityProfile`]: the pair of them, as carried by training
//!   configurations;
//! - [`LifecycleEvent`]/[`LifecycleTracker`]: crash/recover event kinds with
//!   epoch-based invalidation of a crashed node's scheduled events, the
//!   substrate under `jwins_fault`'s fault-injection schedules.
//!
//! The training engine in `jwins::engine` drives these primitives in its
//! event-driven execution mode; this crate knows nothing about learning.

pub mod clock;
pub mod hetero;
pub mod lifecycle;
pub mod queue;

pub use clock::{SimTime, VirtualClock};
pub use hetero::{ComputeProfile, HeterogeneityProfile, LinkParams, LinkProfile};
pub use lifecycle::{LifecycleEvent, LifecycleTracker};
pub use queue::{EventQueue, Scheduled};
