//! Deterministic discrete-event simulation runtime.
//!
//! The paper's headline result is *wall-clock*, not just bytes: on a
//! bandwidth-constrained cluster JWINS reaches the target accuracy in 14 min
//! where random sampling needs 53 min (§IV-C-3). A single scalar time
//! formula under a bulk-synchronous barrier cannot express the mechanisms
//! behind such gaps — stragglers, heterogeneous links, and gossip that
//! proceeds without waiting. This crate supplies the missing substrate:
//!
//! - [`SimTime`]/[`VirtualClock`]: integer-nanosecond virtual time, so event
//!   ordering never depends on float rounding;
//! - [`EventQueue`]: a binary-heap scheduler with *seeded, stable*
//!   tie-breaking — equal-time events are ordered by caller priority, then a
//!   seeded hash, then insertion order, making every run a pure function of
//!   its seed. [`EventQueue::pop_independent_batch`] pops a maximal prefix
//!   of simultaneous, same-[`Conflict`]-class events on pairwise-distinct
//!   nodes, so an interpreter can execute them on worker threads and commit
//!   their side effects in batch order without perturbing the schedule;
//! - [`ComputeProfile`]/[`LinkProfile`]: per-node compute-speed and per-link
//!   latency/bandwidth models, so a message's transfer time is
//!   `latency + bytes / bandwidth` on *its* link and a straggler's round
//!   takes proportionally longer;
//! - [`HeterogeneityProfile`]: the pair of them, as carried by training
//!   configurations;
//! - [`LifecycleEvent`]/[`LifecycleTracker`]: crash/recover event kinds with
//!   epoch-based invalidation of a crashed node's scheduled events, the
//!   substrate under `jwins_fault`'s fault-injection schedules.
//!
//! The training engine in `jwins::engine` drives these primitives in its
//! event-driven execution mode; this crate knows nothing about learning.
//!
//! # Example
//!
//! Schedule three simultaneous per-node events and one global one, then pop
//! them the way the engine does — independent batches first, the global
//! event alone:
//!
//! ```
//! use jwins_sim::{Conflict, EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     Train { node: usize },
//!     Checkpoint,
//! }
//!
//! let classify = |ev: &Ev| match *ev {
//!     Ev::Train { node } => Conflict::Exclusive { class: 1, node },
//!     Ev::Checkpoint => Conflict::Solo,
//! };
//!
//! let mut queue = EventQueue::new(42);
//! for node in 0..3 {
//!     // priority encodes (phase << 32) | node, the engine's convention
//!     queue.push(SimTime(10), (1 << 32) | node as u64, Ev::Train { node });
//! }
//! queue.push(SimTime(10), 2 << 32, Ev::Checkpoint);
//!
//! let batch = queue.pop_independent_batch(classify);
//! assert_eq!(batch.len(), 3, "disjoint-node trains pop together");
//! let solo = queue.pop_independent_batch(classify);
//! assert_eq!(solo.len(), 1, "global events run alone");
//! assert_eq!(solo[0].event, Ev::Checkpoint);
//! assert!(queue.is_empty());
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod hetero;
pub mod lifecycle;
pub mod queue;
pub mod shard;

pub use clock::{SimTime, VirtualClock};
pub use hetero::{ComputeProfile, HeterogeneityProfile, LinkParams, LinkProfile};
pub use lifecycle::{LifecycleEvent, LifecycleTracker};
pub use queue::{Conflict, EventQueue, Scheduled};
pub use shard::{Ordering, ShardedEventQueue};
