//! Heterogeneity models: per-node compute speed and per-link capacity.
//!
//! Cluster heterogeneity is what separates the paper's deployment from an
//! idealized simulation: some nodes compute slower (stragglers), some links
//! are thin. Profiles here are *generative* — they expand a seed into
//! concrete per-node/per-link parameters, so an experiment's hardware is as
//! reproducible as its data split.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Per-node compute-speed distribution. A node's speed is a multiplier on
/// work throughput: training that takes `c` seconds at speed 1 takes
/// `c / speed` seconds at speed `s`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ComputeProfile {
    /// Every node computes at the same speed (no stragglers).
    #[default]
    Uniform,
    /// A `fraction` of nodes (seed-chosen) run `slowdown`× slower — the
    /// classic straggler pattern.
    Stragglers {
        /// Fraction of nodes that are slow, in `[0, 1]`.
        fraction: f64,
        /// How many times slower the stragglers run (`>= 1`).
        slowdown: f64,
    },
    /// Speeds drawn i.i.d. from a log-normal: `speed = exp(N(0, sigma))`,
    /// normalized so the *median* node has speed 1.
    LogNormal {
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Explicit per-node speeds (cycled if shorter than the node count).
    Explicit(Vec<f64>),
}

impl ComputeProfile {
    /// Expands the profile into one speed per node, deterministically in
    /// `(profile, n, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive speeds/slowdowns or fractions outside `[0, 1]`
    /// — profile validity is checked at config-validation time, so reaching
    /// here with bad numbers is a bug.
    pub fn speeds(&self, n: usize, seed: u64) -> Vec<f64> {
        match self {
            ComputeProfile::Uniform => vec![1.0; n],
            ComputeProfile::Stragglers { fraction, slowdown } => {
                assert!((0.0..=1.0).contains(fraction), "straggler fraction");
                assert!(*slowdown >= 1.0, "straggler slowdown must be >= 1");
                let slow_count = (fraction * n as f64).round() as usize;
                let mut speeds = vec![1.0; n];
                // Seed-chosen straggler set: a deterministic partial shuffle.
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5712A);
                use rand::seq::SliceRandom;
                order.shuffle(&mut rng);
                for &i in order.iter().take(slow_count) {
                    speeds[i] = 1.0 / slowdown;
                }
                speeds
            }
            ComputeProfile::LogNormal { sigma } => {
                assert!(*sigma >= 0.0 && sigma.is_finite(), "lognormal sigma");
                let normal = Normal::new(0.0, *sigma).expect("validated sigma");
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0001_0CA1);
                (0..n).map(|_| f64::exp(normal.sample(&mut rng))).collect()
            }
            ComputeProfile::Explicit(list) => {
                assert!(!list.is_empty(), "explicit speeds must be non-empty");
                assert!(
                    list.iter().all(|&s| s > 0.0 && s.is_finite()),
                    "explicit speeds must be positive"
                );
                (0..n).map(|i| list[i % list.len()]).collect()
            }
        }
    }

    /// Whether this profile makes every node identical.
    pub fn is_uniform(&self) -> bool {
        match self {
            ComputeProfile::Uniform => true,
            ComputeProfile::Stragglers { fraction, slowdown } => {
                *fraction == 0.0 || *slowdown == 1.0
            }
            ComputeProfile::LogNormal { sigma } => *sigma == 0.0,
            ComputeProfile::Explicit(list) => list.windows(2).all(|w| w[0] == w[1]),
        }
    }

    /// Validates profile parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ComputeProfile::Uniform => Ok(()),
            ComputeProfile::Stragglers { fraction, slowdown } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(format!("straggler fraction {fraction} outside [0, 1]"));
                }
                if !(*slowdown >= 1.0 && slowdown.is_finite()) {
                    return Err(format!("straggler slowdown {slowdown} must be >= 1"));
                }
                Ok(())
            }
            ComputeProfile::LogNormal { sigma } => {
                if !(*sigma >= 0.0 && sigma.is_finite()) {
                    return Err(format!("lognormal sigma {sigma} must be finite and >= 0"));
                }
                Ok(())
            }
            ComputeProfile::Explicit(list) => {
                if list.is_empty() {
                    return Err("explicit speed list is empty".into());
                }
                if let Some(bad) = list.iter().find(|&&s| !(s > 0.0 && s.is_finite())) {
                    return Err(format!("explicit speed {bad} must be positive and finite"));
                }
                Ok(())
            }
        }
    }
}

/// Concrete parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way propagation latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second (`f64::INFINITY` = instantaneous).
    pub bandwidth_bps: f64,
}

impl LinkParams {
    /// An instantaneous link (zero latency, infinite bandwidth).
    pub const INSTANT: LinkParams = LinkParams {
        latency_s: 0.0,
        bandwidth_bps: f64::INFINITY,
    };

    /// Time for `bytes` to fully arrive: `latency + bytes / bandwidth`.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        if self.bandwidth_bps == f64::INFINITY {
            self.latency_s
        } else {
            self.latency_s + bytes as f64 / self.bandwidth_bps
        }
    }

    /// Serialization (transmission) time alone: `bytes / bandwidth`.
    pub fn serialize_secs(&self, bytes: u64) -> f64 {
        if self.bandwidth_bps == f64::INFINITY {
            0.0
        } else {
            bytes as f64 / self.bandwidth_bps
        }
    }
}

/// Per-link latency/bandwidth distribution over directed node pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LinkProfile {
    /// Instantaneous links: zero latency, infinite bandwidth. Under this
    /// profile (and a uniform compute profile) the event-driven runtime
    /// degrades *bit-for-bit* to the bulk-synchronous engine.
    #[default]
    Instant,
    /// Every directed link shares the same latency and bandwidth.
    Uniform {
        /// One-way latency in seconds.
        latency_s: f64,
        /// Bandwidth in bytes/second.
        bandwidth_bps: f64,
    },
    /// Latency and bandwidth jittered per directed link: each link's
    /// bandwidth is `base * exp(N(0, sigma))` and latency is scaled by the
    /// inverse factor, deterministically in `(seed, from, to)`.
    LogNormal {
        /// Median one-way latency in seconds.
        latency_s: f64,
        /// Median bandwidth in bytes/second.
        bandwidth_bps: f64,
        /// Log-scale spread of per-link capacity.
        sigma: f64,
    },
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LinkProfile {
    /// Parameters of the directed link `from -> to`, deterministic in
    /// `(profile, seed, from, to)` and independent of query order.
    pub fn link(&self, from: usize, to: usize, seed: u64) -> LinkParams {
        match self {
            LinkProfile::Instant => LinkParams::INSTANT,
            LinkProfile::Uniform {
                latency_s,
                bandwidth_bps,
            } => LinkParams {
                latency_s: *latency_s,
                bandwidth_bps: *bandwidth_bps,
            },
            LinkProfile::LogNormal {
                latency_s,
                bandwidth_bps,
                sigma,
            } => {
                // One standard normal from the link's own hash stream.
                let h = splitmix64(
                    seed ^ (from as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (to as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                let mut rng = ChaCha8Rng::seed_from_u64(h);
                let normal = Normal::new(0.0, *sigma).expect("validated sigma");
                let factor = f64::exp(normal.sample(&mut rng));
                LinkParams {
                    latency_s: latency_s / factor,
                    bandwidth_bps: bandwidth_bps * factor,
                }
            }
        }
    }

    /// Whether every link is instantaneous.
    pub fn is_instant(&self) -> bool {
        matches!(self, LinkProfile::Instant)
    }

    /// Validates profile parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            LinkProfile::Instant => Ok(()),
            LinkProfile::Uniform {
                latency_s,
                bandwidth_bps,
            }
            | LinkProfile::LogNormal {
                latency_s,
                bandwidth_bps,
                ..
            } => {
                if !(*latency_s >= 0.0 && latency_s.is_finite()) {
                    return Err(format!("link latency {latency_s} must be finite and >= 0"));
                }
                // Written via partial_cmp so NaN is also rejected.
                if bandwidth_bps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(format!("link bandwidth {bandwidth_bps} must be positive"));
                }
                if let LinkProfile::LogNormal { sigma, .. } = self {
                    if !(*sigma >= 0.0 && sigma.is_finite()) {
                        return Err(format!("link sigma {sigma} must be finite and >= 0"));
                    }
                }
                Ok(())
            }
        }
    }
}

/// The full hardware picture of one simulated cluster: compute speeds plus
/// link capacities. [`Default`] is the *degenerate* profile (uniform
/// compute, instantaneous links) under which event-driven execution
/// reproduces bulk-synchronous execution exactly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HeterogeneityProfile {
    /// Per-node compute speeds.
    pub compute: ComputeProfile,
    /// Per-link latency/bandwidth.
    pub links: LinkProfile,
}

impl HeterogeneityProfile {
    /// A straggler cluster over uniform links — the profile behind the
    /// `stragglers` example and the `ext_async` benchmark.
    pub fn stragglers(fraction: f64, slowdown: f64, latency_s: f64, bandwidth_bps: f64) -> Self {
        Self {
            compute: ComputeProfile::Stragglers { fraction, slowdown },
            links: LinkProfile::Uniform {
                latency_s,
                bandwidth_bps,
            },
        }
    }

    /// Whether this profile is degenerate (uniform compute and instant
    /// links), i.e. event-driven execution equals bulk-synchronous.
    pub fn is_degenerate(&self) -> bool {
        self.compute.is_uniform() && self.links.is_instant()
    }

    /// Validates both component profiles.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.compute.validate()?;
        self.links.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_is_flat() {
        let speeds = ComputeProfile::Uniform.speeds(5, 1);
        assert_eq!(speeds, vec![1.0; 5]);
        assert!(ComputeProfile::Uniform.is_uniform());
    }

    #[test]
    fn stragglers_hit_the_requested_fraction() {
        let profile = ComputeProfile::Stragglers {
            fraction: 0.25,
            slowdown: 4.0,
        };
        let speeds = profile.speeds(16, 7);
        let slow = speeds.iter().filter(|&&s| s < 1.0).count();
        assert_eq!(slow, 4);
        assert!(speeds.iter().all(|&s| s == 1.0 || s == 0.25));
        // Deterministic in the seed; different seeds pick different sets.
        assert_eq!(profile.speeds(16, 7), speeds);
        assert_ne!(profile.speeds(16, 8), speeds);
    }

    #[test]
    fn lognormal_speeds_are_positive_and_spread() {
        let profile = ComputeProfile::LogNormal { sigma: 0.5 };
        let speeds = profile.speeds(64, 3);
        assert!(speeds.iter().all(|&s| s > 0.0));
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.5, "no spread: {min}..{max}");
    }

    #[test]
    fn explicit_speeds_cycle() {
        let profile = ComputeProfile::Explicit(vec![1.0, 2.0]);
        assert_eq!(profile.speeds(5, 0), vec![1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn transfer_time_composes_latency_and_bandwidth() {
        let link = LinkParams {
            latency_s: 0.5,
            bandwidth_bps: 1000.0,
        };
        assert!((link.transfer_secs(2000) - 2.5).abs() < 1e-12);
        assert_eq!(LinkParams::INSTANT.transfer_secs(u64::MAX), 0.0);
    }

    #[test]
    fn lognormal_links_are_deterministic_and_order_free() {
        let profile = LinkProfile::LogNormal {
            latency_s: 0.01,
            bandwidth_bps: 1e6,
            sigma: 0.4,
        };
        let a = profile.link(2, 5, 9);
        let b = profile.link(0, 1, 9);
        // Re-querying in any order yields identical parameters.
        assert_eq!(profile.link(2, 5, 9), a);
        assert_eq!(profile.link(0, 1, 9), b);
        assert_ne!(a, b);
        assert!(a.bandwidth_bps > 0.0 && b.latency_s > 0.0);
    }

    #[test]
    fn degenerate_profile_detection() {
        assert!(HeterogeneityProfile::default().is_degenerate());
        assert!(!HeterogeneityProfile::stragglers(0.5, 2.0, 0.0, 1e6).is_degenerate());
        let zero_stragglers = HeterogeneityProfile {
            compute: ComputeProfile::Stragglers {
                fraction: 0.0,
                slowdown: 8.0,
            },
            links: LinkProfile::Instant,
        };
        assert!(zero_stragglers.is_degenerate());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ComputeProfile::Stragglers {
            fraction: 1.5,
            slowdown: 2.0
        }
        .validate()
        .is_err());
        assert!(ComputeProfile::Explicit(vec![]).validate().is_err());
        assert!(LinkProfile::Uniform {
            latency_s: -1.0,
            bandwidth_bps: 1.0
        }
        .validate()
        .is_err());
        assert!(LinkProfile::Uniform {
            latency_s: 0.0,
            bandwidth_bps: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn profiles_serde_round_trip() {
        let profile = HeterogeneityProfile::stragglers(0.2, 3.0, 0.005, 12.5e6);
        let text = serde::json::to_string(&profile);
        let back: HeterogeneityProfile = serde::json::from_str(&text).unwrap();
        assert_eq!(back, profile);
    }
}
