//! A sharded event scheduler for large-node-count runs.
//!
//! [`ShardedEventQueue`] splits the pending-event set across per-node-group
//! binary heaps (shard = `node % shards`) while preserving the *global*
//! total order of [`crate::queue::EventQueue`]: one shared insertion
//! counter drives the same seeded tie-break hash, and every pop takes the
//! minimum over shard heads under the identical
//! `(time, priority, tie, seq)` key. With [`Ordering::Strict`] the pop
//! sequence — and therefore every downstream batch, commit, and trace — is
//! bit-identical to the single-heap queue for any shard count; a proptest
//! below pins that equivalence under arbitrary interleavings.
//!
//! [`Ordering::Window`] is the throughput mode: `pop_independent_batch` may
//! extend a batch past the head's fire time, up to `max_skew_ns` later, as
//! long as the batch stays one conflict class on pairwise-distinct nodes.
//! Under fully-random per-node speeds, strictly-simultaneous batches
//! degenerate to singletons and serialize the worker pool; a bounded skew
//! window restores wide batches at the cost of a bounded reordering: an
//! event executed inside a window cannot observe side effects (messages,
//! repairs) committed by earlier batch members less than `max_skew_ns`
//! before it. The batch is still a prefix of the queue's total order, so
//! runs remain bit-reproducible for a fixed `(seed, max_skew_ns)` — Window
//! trades *agreement with the strict schedule* for parallelism, never
//! run-to-run determinism.

use crate::clock::SimTime;
use crate::queue::{splitmix64, Conflict, Scheduled};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Commit-order contract for [`ShardedEventQueue::pop_independent_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Ordering {
    /// Batches contain only simultaneous events; the pop sequence is
    /// bit-identical to the global single-heap [`crate::EventQueue`].
    #[default]
    Strict,
    /// Batches may span fire times up to `max_skew_ns` apart. Deterministic
    /// for a fixed seed and skew, but *not* equivalent to the strict
    /// schedule: an event may execute without seeing effects committed up
    /// to `max_skew_ns` of virtual time before it fires.
    Window {
        /// Maximum spread, in virtual nanoseconds, between the earliest and
        /// latest fire time inside one batch.
        max_skew_ns: u64,
    },
}

impl Ordering {
    /// The batch time-spread bound: zero under [`Ordering::Strict`].
    pub fn max_skew_ns(self) -> u64 {
        match self {
            Ordering::Strict => 0,
            Ordering::Window { max_skew_ns } => max_skew_ns,
        }
    }
}

#[derive(Debug)]
struct ShardEntry<E> {
    time: SimTime,
    priority: u64,
    tie: u64,
    seq: u64,
    event: E,
}

impl<E> ShardEntry<E> {
    fn key(&self) -> (SimTime, u64, u64, u64) {
        (self.time, self.priority, self.tie, self.seq)
    }
}

impl<E> PartialEq for ShardEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for ShardEntry<E> {}

impl<E> PartialOrd for ShardEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ShardEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap; invert so the smallest key sits at each shard head.
        other.key().cmp(&self.key())
    }
}

/// A deterministic event queue sharded by node id.
///
/// Same contract as [`crate::EventQueue`] — seeded total order, conflict-
/// aware batch pop — but pending events live in `shards` independent heaps
/// so push/pop touch a heap of `n/shards` entries instead of `n`. `push`
/// takes the node that owns the event (routing is `node % shards`; events
/// with no owning node may pass any stable id) purely as a placement hint:
/// pops always take the global minimum across shard heads, so shard count
/// never changes the schedule.
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    shards: Vec<BinaryHeap<ShardEntry<E>>>,
    seed: u64,
    next_seq: u64,
    len: usize,
    ordering: Ordering,
}

impl<E> ShardedEventQueue<E> {
    /// An empty queue with `shards` heaps (clamped to at least one) whose
    /// tie-breaks are derived from `seed`, popping batches under `ordering`.
    pub fn new(seed: u64, shards: usize, ordering: Ordering) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            seed,
            next_seq: 0,
            len: 0,
            ordering,
        }
    }

    /// Number of shards (always at least one).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured commit-order mode.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// The shard that owns events routed by `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        node % self.shards.len()
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at `time` with same-time rank `priority`, routed
    /// to shard `node % shards`. The sequence counter and tie-break hash
    /// are global, so the resulting total order is independent of routing.
    pub fn push(&mut self, time: SimTime, priority: u64, node: usize, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = node % self.shards.len();
        self.shards[shard].push(ShardEntry {
            time,
            priority,
            tie: splitmix64(self.seed ^ seq),
            seq,
            event,
        });
        self.len += 1;
    }

    /// The shard whose head is the global minimum, if any event is pending.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(usize, (SimTime, u64, u64, u64))> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(head) = heap.peek() {
                let key = head.key();
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Removes and returns the next event in the global
    /// (time, priority, seeded-tie) order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let shard = self.min_shard()?;
        let entry = self.shards[shard].pop().expect("peeked head exists");
        self.len -= 1;
        Some(Scheduled {
            time: entry.time,
            priority: entry.priority,
            event: entry.event,
        })
    }

    /// The fire time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_shard()
            .and_then(|s| self.shards[s].peek())
            .map(|e| e.time)
    }

    /// Pops the maximal batch of *independent* events: the longest prefix
    /// of the global total order whose events classify as
    /// [`Conflict::Exclusive`] with the head's class, touch pairwise-
    /// distinct nodes, and fire within the ordering mode's time window of
    /// the head ([`Ordering::Strict`]: exactly the head's time — identical
    /// to [`crate::EventQueue::pop_independent_batch`];
    /// [`Ordering::Window`]: at most `max_skew_ns` later). A
    /// [`Conflict::Solo`] head yields a batch of at most one event.
    pub fn pop_independent_batch<F>(&mut self, classify: F) -> Vec<Scheduled<E>>
    where
        F: Fn(&E) -> Conflict,
    {
        let Some(first) = self.pop() else {
            return Vec::new();
        };
        let time = first.time;
        let skew = self.ordering.max_skew_ns();
        let Conflict::Exclusive { class, node } = classify(&first.event) else {
            return vec![first];
        };
        let mut claimed = std::collections::HashSet::new();
        claimed.insert(node);
        let mut batch = vec![first];
        while let Some(shard) = self.min_shard() {
            let head = self.shards[shard].peek().expect("min shard has a head");
            // `head` follows `first` in the total order, so its time is
            // never earlier; the spread below cannot underflow.
            if head.time.0.saturating_sub(time.0) > skew {
                break;
            }
            match classify(&head.event) {
                Conflict::Exclusive { class: c, node } if c == class => {
                    if !claimed.insert(node) {
                        break;
                    }
                }
                _ => break,
            }
            let entry = self.shards[shard].pop().expect("peeked entry exists");
            self.len -= 1;
            batch.push(Scheduled {
                time: entry.time,
                priority: entry.priority,
                event: entry.event,
            });
        }
        batch
    }

    /// Discards all pending events (used on early stop).
    pub fn clear(&mut self) {
        for heap in &mut self.shards {
            heap.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    fn prio(class: u64, node: usize) -> u64 {
        (class << 32) | node as u64
    }

    #[test]
    fn strict_pop_matches_global_queue_by_hand() {
        let mut global = EventQueue::new(99);
        let mut sharded = ShardedEventQueue::new(99, 4, Ordering::Strict);
        for node in 0..12 {
            let t = SimTime((node as u64 * 7) % 3);
            global.push(t, prio(1, node), node);
            sharded.push(t, prio(1, node), node, node);
        }
        let g: Vec<_> = std::iter::from_fn(|| global.pop().map(|s| s.event)).collect();
        let s: Vec<_> = std::iter::from_fn(|| sharded.pop().map(|s| s.event)).collect();
        assert_eq!(g, s);
    }

    #[test]
    fn shard_count_is_clamped_and_reported() {
        let q: ShardedEventQueue<()> = ShardedEventQueue::new(0, 0, Ordering::Strict);
        assert_eq!(q.shard_count(), 1);
        let q: ShardedEventQueue<()> = ShardedEventQueue::new(0, 16, Ordering::Strict);
        assert_eq!(q.shard_count(), 16);
        assert_eq!(q.shard_of(17), 1);
    }

    #[test]
    fn window_batches_span_close_fire_times() {
        // Four same-class events 10ns apart on distinct nodes: strict pops
        // four singleton batches, a 35ns window pops one batch of four.
        let fill = |q: &mut ShardedEventQueue<usize>| {
            for node in 0..4 {
                q.push(SimTime(100 + node as u64 * 10), prio(1, node), node, node);
            }
        };
        let classify = |&node: &usize| Conflict::Exclusive { class: 1, node };

        let mut strict = ShardedEventQueue::new(7, 2, Ordering::Strict);
        fill(&mut strict);
        assert_eq!(strict.pop_independent_batch(classify).len(), 1);

        let mut window = ShardedEventQueue::new(7, 2, Ordering::Window { max_skew_ns: 35 });
        fill(&mut window);
        let batch = window.pop_independent_batch(classify);
        assert_eq!(batch.len(), 4, "all four fall inside the window");
        assert_eq!(
            batch.iter().map(|s| s.event).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "window batches preserve the total order"
        );
    }

    #[test]
    fn window_is_bounded_and_measured_from_the_head() {
        let classify = |&node: &usize| Conflict::Exclusive { class: 1, node };
        let mut q = ShardedEventQueue::new(7, 2, Ordering::Window { max_skew_ns: 15 });
        q.push(SimTime(0), prio(1, 0), 0, 0);
        q.push(SimTime(10), prio(1, 1), 1, 1);
        // 20ns after the *head*, though only 10ns after its predecessor:
        // the spread bound is head-anchored, so this starts a new batch.
        q.push(SimTime(20), prio(1, 2), 2, 2);
        let batch = q.pop_independent_batch(classify);
        assert_eq!(
            batch.iter().map(|s| s.event).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(q.pop_independent_batch(classify).len(), 1);
    }

    #[test]
    fn window_still_respects_class_node_and_solo_boundaries() {
        let classify = |&(class, node): &(u64, usize)| {
            if class == 0 {
                Conflict::Solo
            } else {
                Conflict::Exclusive { class, node }
            }
        };
        let mut q = ShardedEventQueue::new(3, 4, Ordering::Window { max_skew_ns: 1_000 });
        q.push(SimTime(0), prio(1, 0), 0, (1, 0));
        q.push(SimTime(5), prio(1, 0), 0, (1, 0)); // duplicate node
        q.push(SimTime(6), prio(1, 1), 1, (1, 1));
        let batch = q.pop_independent_batch(classify);
        assert_eq!(batch.len(), 1, "duplicate node ends the batch");
        assert_eq!(q.pop_independent_batch(classify).len(), 2);

        let mut q = ShardedEventQueue::new(3, 4, Ordering::Window { max_skew_ns: 1_000 });
        q.push(SimTime(0), prio(0, 0), 0, (0, 0)); // solo
        q.push(SimTime(1), prio(1, 1), 1, (1, 1));
        assert_eq!(
            q.pop_independent_batch(classify).len(),
            1,
            "solo runs alone"
        );

        let mut q = ShardedEventQueue::new(3, 4, Ordering::Window { max_skew_ns: 1_000 });
        q.push(SimTime(0), prio(1, 0), 0, (1, 0));
        q.push(SimTime(1), prio(2, 1), 1, (2, 1)); // different class
        assert_eq!(
            q.pop_independent_batch(classify).len(),
            1,
            "class boundary ends the batch even inside the window"
        );
    }

    #[test]
    fn peek_len_and_clear_track_all_shards() {
        let mut q = ShardedEventQueue::new(0, 3, Ordering::Strict);
        assert!(q.is_empty());
        q.push(SimTime(4), 0, 0, 'a');
        q.push(SimTime(2), 0, 1, 'b');
        q.push(SimTime(9), 0, 2, 'c');
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 3);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn ordering_serde_round_trip_and_default() {
        assert_eq!(Ordering::default(), Ordering::Strict);
        for mode in [Ordering::Strict, Ordering::Window { max_skew_ns: 250 }] {
            let text = serde::json::to_string(&mode);
            let back: Ordering = serde::json::from_str(&text).unwrap();
            assert_eq!(back, mode);
        }
        assert_eq!(Ordering::Strict.max_skew_ns(), 0);
        assert_eq!(Ordering::Window { max_skew_ns: 9 }.max_skew_ns(), 9);
    }

    use proptest::prelude::*;

    proptest! {
        /// The heart of the Strict contract: for any seed, shard count and
        /// event interleaving, the sharded queue's sequential pops AND its
        /// independent batches replay the global single-heap queue exactly —
        /// same events, same order, same grouping.
        #[test]
        fn strict_sharded_replays_the_global_queue(
            seed in proptest::any::<u64>(),
            shards in 1usize..8,
            events in proptest::collection::vec(
                (0u64..4, 0u64..3, 0usize..6), 1..48),
        ) {
            let classify = |&(_, class, node): &(usize, u64, usize)| {
                if class == 0 {
                    Conflict::Solo
                } else {
                    Conflict::Exclusive { class, node }
                }
            };
            let mut global = EventQueue::new(seed);
            let mut plain = ShardedEventQueue::new(seed, shards, Ordering::Strict);
            let mut batched = ShardedEventQueue::new(seed, shards, Ordering::Strict);
            for (i, &(t, class, node)) in events.iter().enumerate() {
                let priority = (class << 32) | node as u64;
                global.push(SimTime(t), priority, (i, class, node));
                plain.push(SimTime(t), priority, node, (i, class, node));
                batched.push(SimTime(t), priority, node, (i, class, node));
            }
            // One-at-a-time pops agree with the global heap.
            let reference: Vec<_> =
                std::iter::from_fn(|| global.pop().map(|s| s.event)).collect();
            let popped: Vec<_> =
                std::iter::from_fn(|| plain.pop().map(|s| s.event)).collect();
            prop_assert_eq!(&popped, &reference);
            // Batch boundaries agree with the global heap's batch pop too.
            let mut global = EventQueue::new(seed);
            for (i, &(t, class, node)) in events.iter().enumerate() {
                let priority = (class << 32) | node as u64;
                global.push(SimTime(t), priority, (i, class, node));
            }
            loop {
                let expect: Vec<_> = global
                    .pop_independent_batch(classify)
                    .into_iter()
                    .map(|s| (s.time, s.priority, s.event))
                    .collect();
                let got: Vec<_> = batched
                    .pop_independent_batch(classify)
                    .into_iter()
                    .map(|s| (s.time, s.priority, s.event))
                    .collect();
                prop_assert_eq!(&got, &expect);
                if expect.is_empty() {
                    break;
                }
            }
        }

        /// Window batches are still prefixes of the total order: flattening
        /// them replays the sequential pop sequence exactly, every batch is
        /// one class on distinct nodes, and no batch spans more virtual
        /// time than the configured skew.
        #[test]
        fn window_batches_partition_order_within_skew(
            seed in proptest::any::<u64>(),
            shards in 1usize..8,
            skew in 0u64..5,
            events in proptest::collection::vec(
                (0u64..6, 0u64..3, 0usize..6), 1..48),
        ) {
            let classify = |&(_, class, node): &(usize, u64, usize)| {
                if class == 0 {
                    Conflict::Solo
                } else {
                    Conflict::Exclusive { class, node }
                }
            };
            let ordering = Ordering::Window { max_skew_ns: skew };
            let mut plain = ShardedEventQueue::new(seed, shards, ordering);
            let mut batched = ShardedEventQueue::new(seed, shards, ordering);
            for (i, &(t, class, node)) in events.iter().enumerate() {
                let priority = (class << 32) | node as u64;
                plain.push(SimTime(t), priority, node, (i, class, node));
                batched.push(SimTime(t), priority, node, (i, class, node));
            }
            let sequential: Vec<_> =
                std::iter::from_fn(|| plain.pop().map(|s| s.event)).collect();
            let mut flattened = Vec::new();
            loop {
                let batch = batched.pop_independent_batch(classify);
                if batch.is_empty() {
                    break;
                }
                let head_time = batch[0].time;
                let head = classify(&batch[0].event);
                let mut nodes = std::collections::HashSet::new();
                for s in &batch {
                    prop_assert!(
                        s.time.0 >= head_time.0
                            && s.time.0 - head_time.0 <= skew,
                        "batch spans {}ns > skew {}ns",
                        s.time.0 - head_time.0, skew
                    );
                    if batch.len() > 1 {
                        let c = classify(&s.event);
                        prop_assert!(
                            matches!((head, c), (
                                Conflict::Exclusive { class: a, .. },
                                Conflict::Exclusive { class: b, .. },
                            ) if a == b),
                            "batch mixes classes: {:?} vs {:?}", head, c
                        );
                        let (_, _, node) = s.event;
                        prop_assert!(
                            nodes.insert(node),
                            "batch contains node {} twice", node
                        );
                    }
                }
                flattened.extend(batch.into_iter().map(|s| s.event));
            }
            prop_assert_eq!(flattened, sequential);
        }
    }
}
