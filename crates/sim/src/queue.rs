//! The discrete-event scheduler: a binary heap keyed by virtual time with
//! seeded, stable tie-breaking.
//!
//! Three keys order events:
//!
//! 1. **time** — earlier fires first;
//! 2. **priority** — a caller-supplied rank separating phases that must not
//!    interleave at equal time (the engine encodes `phase * 2^32 + node`);
//! 3. **seeded tie-break** — among events equal on both, a SplitMix64 hash
//!    of `(seed, insertion index)` fixes the order. The permutation of
//!    simultaneous same-priority events is thus random *across seeds* (no
//!    accidental bias toward insertion order) yet bit-stable across runs and
//!    replayable from the seed alone; insertion index breaks any final ties
//!    so the order is total.

use crate::clock::SimTime;
use std::collections::BinaryHeap;

/// One scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Caller-supplied same-time ordering rank (lower fires first).
    pub priority: u64,
    /// The payload.
    pub event: E,
}

#[derive(Debug)]
struct HeapEntry<E> {
    time: SimTime,
    priority: u64,
    tie: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        (other.time, other.priority, other.tie, other.seq).cmp(&(
            self.time,
            self.priority,
            self.tie,
            self.seq,
        ))
    }
}

/// A deterministic event queue over virtual time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seed: u64,
    next_seq: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<E> EventQueue<E> {
    /// An empty queue whose same-key tie-breaks are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            heap: BinaryHeap::new(),
            seed,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time` with same-time rank `priority`.
    pub fn push(&mut self, time: SimTime, priority: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time,
            priority,
            tie: splitmix64(self.seed ^ seq),
            seq,
            event,
        });
    }

    /// Removes and returns the next event in (time, priority, seeded-tie)
    /// order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.time,
            priority: e.priority,
            event: e.event,
        })
    }

    /// The fire time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Discards all pending events (used on early stop).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_priority() {
        let mut q = EventQueue::new(7);
        q.push(SimTime(30), 0, "late");
        q.push(SimTime(10), 5, "early-low-rank");
        q.push(SimTime(10), 1, "early-high-rank");
        q.push(SimTime(20), 0, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(
            order,
            ["early-high-rank", "early-low-rank", "middle", "late"]
        );
    }

    #[test]
    fn equal_keys_replay_identically_per_seed() {
        let run = |seed: u64| {
            let mut q = EventQueue::new(seed);
            for i in 0..32 {
                q.push(SimTime(1), 0, i);
            }
            std::iter::from_fn(|| q.pop().map(|s| s.event)).collect::<Vec<i32>>()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(9), run(9));
        // Different seeds permute simultaneous events differently.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn seeded_tie_break_is_a_permutation() {
        let mut q = EventQueue::new(3);
        for i in 0..100 {
            q.push(SimTime(5), 0, i);
        }
        let mut popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        popped.sort_unstable();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new(0);
        assert!(q.is_empty());
        q.push(SimTime(4), 0, ());
        q.push(SimTime(2), 0, ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.pop().is_none());
    }
}
