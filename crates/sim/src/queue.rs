//! The discrete-event scheduler: a binary heap keyed by virtual time with
//! seeded, stable tie-breaking, plus a conflict-aware batch pop for
//! deterministic parallel execution.
//!
//! Three keys order events:
//!
//! 1. **time** — earlier fires first;
//! 2. **priority** — a caller-supplied rank separating phases that must not
//!    interleave at equal time (the engine encodes `phase * 2^32 + node`);
//! 3. **seeded tie-break** — among events equal on both, a SplitMix64 hash
//!    of `(seed, insertion index)` fixes the order. The permutation of
//!    simultaneous same-priority events is thus random *across seeds* (no
//!    accidental bias toward insertion order) yet bit-stable across runs and
//!    replayable from the seed alone; insertion index breaks any final ties
//!    so the order is total.
//!
//! [`EventQueue::pop_independent_batch`] pops a maximal *prefix* of that
//! total order whose events are simultaneous, share a [`Conflict`] class and
//! touch pairwise-distinct nodes. Because the batch is a contiguous prefix,
//! executing its events concurrently and committing their side effects in
//! batch order is observably identical to popping them one at a time — the
//! foundation of the engine's thread-count-invariance guarantee.

use crate::clock::SimTime;
use std::collections::BinaryHeap;

/// How an event interacts with simulation state, as reported to
/// [`EventQueue::pop_independent_batch`] by the caller's classifier.
///
/// The classification is a *promise* from the interpreter: an
/// [`Conflict::Exclusive`] event may read and write only state owned by its
/// `node` (its model, its mailbox, its RNG) plus append-only effects that the
/// caller defers to an ordered commit phase. Two exclusive events of the same
/// `class` on different nodes are then independent and may execute
/// concurrently. Events that touch global state (crash/recovery replay,
/// cluster-wide evaluation) must be [`Conflict::Solo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Conflict {
    /// Touches only state owned by `node`; batchable with same-`class`
    /// events on other nodes at the same virtual time.
    Exclusive {
        /// Event-kind class; only equal classes batch together (the engine
        /// uses its same-time phase rank, so a batch is always one phase).
        class: u64,
        /// The single node whose state the event may touch.
        node: usize,
    },
    /// Touches shared state; always popped as a batch of one.
    Solo,
}

/// One scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Caller-supplied same-time ordering rank (lower fires first).
    pub priority: u64,
    /// The payload.
    pub event: E,
}

#[derive(Debug)]
struct HeapEntry<E> {
    time: SimTime,
    priority: u64,
    tie: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        (other.time, other.priority, other.tie, other.seq).cmp(&(
            self.time,
            self.priority,
            self.tie,
            self.seq,
        ))
    }
}

/// A deterministic event queue over virtual time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seed: u64,
    next_seq: u64,
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<E> EventQueue<E> {
    /// An empty queue whose same-key tie-breaks are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            heap: BinaryHeap::new(),
            seed,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time` with same-time rank `priority`.
    pub fn push(&mut self, time: SimTime, priority: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time,
            priority,
            tie: splitmix64(self.seed ^ seq),
            seq,
            event,
        });
    }

    /// Removes and returns the next event in (time, priority, seeded-tie)
    /// order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.time,
            priority: e.priority,
            event: e.event,
        })
    }

    /// The fire time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the maximal batch of *independent* simultaneous events: the
    /// longest prefix of the queue's total order whose events all fire at
    /// the head's time, classify as [`Conflict::Exclusive`] with the head's
    /// class, and touch pairwise-distinct nodes. A [`Conflict::Solo`] head
    /// (or an empty queue) yields a batch of at most one event.
    ///
    /// The batch is returned in exact pop order, so an interpreter that
    /// executes the batch concurrently and commits side effects in batch
    /// order reproduces the one-at-a-time schedule bit for bit — including
    /// the seeded tie-breaks, which stay inside the queue untouched. The
    /// prefix stops at the first event that fires later, has a different
    /// class, is `Solo`, or repeats an already-claimed node (a stale
    /// duplicate); that event simply heads the next batch.
    pub fn pop_independent_batch<F>(&mut self, classify: F) -> Vec<Scheduled<E>>
    where
        F: Fn(&E) -> Conflict,
    {
        let Some(first) = self.pop() else {
            return Vec::new();
        };
        let time = first.time;
        let Conflict::Exclusive { class, node } = classify(&first.event) else {
            return vec![first];
        };
        let mut claimed = std::collections::HashSet::new();
        claimed.insert(node);
        let mut batch = vec![first];
        while let Some(head) = self.heap.peek() {
            if head.time != time {
                break;
            }
            match classify(&head.event) {
                Conflict::Exclusive { class: c, node } if c == class => {
                    if !claimed.insert(node) {
                        break;
                    }
                }
                _ => break,
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            batch.push(Scheduled {
                time: entry.time,
                priority: entry.priority,
                event: entry.event,
            });
        }
        batch
    }

    /// Discards all pending events (used on early stop).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_priority() {
        let mut q = EventQueue::new(7);
        q.push(SimTime(30), 0, "late");
        q.push(SimTime(10), 5, "early-low-rank");
        q.push(SimTime(10), 1, "early-high-rank");
        q.push(SimTime(20), 0, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(
            order,
            ["early-high-rank", "early-low-rank", "middle", "late"]
        );
    }

    #[test]
    fn equal_keys_replay_identically_per_seed() {
        let run = |seed: u64| {
            let mut q = EventQueue::new(seed);
            for i in 0..32 {
                q.push(SimTime(1), 0, i);
            }
            std::iter::from_fn(|| q.pop().map(|s| s.event)).collect::<Vec<i32>>()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(9), run(9));
        // Different seeds permute simultaneous events differently.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn seeded_tie_break_is_a_permutation() {
        let mut q = EventQueue::new(3);
        for i in 0..100 {
            q.push(SimTime(5), 0, i);
        }
        let mut popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        popped.sort_unstable();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    /// Encodes the engine's priority convention for batch tests.
    fn prio(class: u64, node: usize) -> u64 {
        (class << 32) | node as u64
    }

    #[test]
    fn batch_pops_simultaneous_same_class_distinct_nodes() {
        let mut q = EventQueue::new(11);
        for node in 0..4 {
            q.push(SimTime(5), prio(1, node), ("train", node));
        }
        q.push(SimTime(5), prio(2, 0), ("mix", 0)); // later class
        q.push(SimTime(9), prio(1, 9), ("train", 9)); // later time
        let batch = q.pop_independent_batch(|&(_, node)| Conflict::Exclusive { class: 1, node });
        assert_eq!(batch.len(), 4, "all four simultaneous trains batch");
        assert_eq!(
            batch.iter().map(|s| s.event.1).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "priority (node id) order is preserved"
        );
        assert_eq!(q.len(), 2, "the later class and later time stay queued");
    }

    #[test]
    fn batch_stops_at_class_boundary_and_solo_events_run_alone() {
        let mut q = EventQueue::new(0);
        q.push(SimTime(1), prio(0, 3), (0u64, 3usize)); // class 0 = solo
        q.push(SimTime(1), prio(1, 0), (1, 0));
        q.push(SimTime(1), prio(1, 1), (1, 1));
        let classify = |&(class, node): &(u64, usize)| {
            if class == 0 {
                Conflict::Solo
            } else {
                Conflict::Exclusive { class, node }
            }
        };
        let solo = q.pop_independent_batch(classify);
        assert_eq!(solo.len(), 1);
        assert_eq!(solo[0].event, (0, 3));
        let pair = q.pop_independent_batch(classify);
        assert_eq!(pair.len(), 2);
        assert!(q.pop_independent_batch(classify).is_empty());
    }

    #[test]
    fn batch_stops_at_duplicate_node() {
        // Two same-time same-class events on one node (a stale epoch
        // duplicate): the second must head its own batch, never share one.
        let mut q = EventQueue::new(3);
        q.push(SimTime(2), prio(1, 0), 'a');
        q.push(SimTime(2), prio(1, 0), 'b');
        let first = q.pop_independent_batch(|_| Conflict::Exclusive { class: 1, node: 0 });
        assert_eq!(first.len(), 1);
        let second = q.pop_independent_batch(|_| Conflict::Exclusive { class: 1, node: 0 });
        assert_eq!(second.len(), 1);
        assert_ne!(first[0].event, second[0].event);
    }

    use proptest::prelude::*;

    proptest! {
        /// Batched popping is a pure re-grouping of the sequential pop
        /// order: flattened batches replay the one-at-a-time sequence
        /// exactly (tie-breaks included), no batch mixes times or classes,
        /// and no batch contains two events on the same node.
        #[test]
        fn batches_partition_the_sequential_order(
            seed in proptest::any::<u64>(),
            events in proptest::collection::vec(
                (0u64..4, 0u64..3, 0usize..6), 1..48),
        ) {
            let classify = |&(_, class, node): &(usize, u64, usize)| {
                if class == 0 {
                    Conflict::Solo
                } else {
                    Conflict::Exclusive { class, node }
                }
            };
            let mut plain = EventQueue::new(seed);
            let mut batched = EventQueue::new(seed);
            for (i, &(t, class, node)) in events.iter().enumerate() {
                let priority = (class << 32) | node as u64;
                plain.push(SimTime(t), priority, (i, class, node));
                batched.push(SimTime(t), priority, (i, class, node));
            }
            let sequential: Vec<_> =
                std::iter::from_fn(|| plain.pop().map(|s| s.event)).collect();
            let mut flattened = Vec::new();
            loop {
                let batch = batched.pop_independent_batch(classify);
                if batch.is_empty() {
                    break;
                }
                let time = batch[0].time;
                let head = classify(&batch[0].event);
                let mut nodes = std::collections::HashSet::new();
                for s in &batch {
                    prop_assert_eq!(s.time, time, "batch mixes fire times");
                    if batch.len() > 1 {
                        let c = classify(&s.event);
                        prop_assert!(
                            matches!((head, c), (
                                Conflict::Exclusive { class: a, .. },
                                Conflict::Exclusive { class: b, .. },
                            ) if a == b),
                            "batch mixes classes: {:?} vs {:?}", head, c
                        );
                        let (_, _, node) = s.event;
                        prop_assert!(
                            nodes.insert(node),
                            "batch contains node {} twice", node
                        );
                    }
                }
                flattened.extend(batch.into_iter().map(|s| s.event));
            }
            prop_assert_eq!(flattened, sequential);
        }
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new(0);
        assert!(q.is_empty());
        q.push(SimTime(4), 0, ());
        q.push(SimTime(2), 0, ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.pop().is_none());
    }
}
