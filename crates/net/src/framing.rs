//! Wire framing for the real-concurrency backend.
//!
//! Messages crossing an OS-thread (or, later, socket) boundary lose the
//! typed `Envelope` the in-memory backend shares by reference, so the
//! [`crate::ThreadChannelTransport`] serializes each one into a
//! self-describing frame — magic, version, message kind, routing header,
//! round/time stamps, length-prefixed payload — in the style of a
//! production p2p stack's message layer: the receiver *validates* what the
//! wire handed it instead of trusting it.
//!
//! The frame header is deliberately **not** metered by [`crate::meter`]:
//! the engine's byte accounting must be identical across backends (the
//! cross-check harness compares `RoundRecord` traffic columns), so framing
//! overhead is transport-internal, like TCP/IP headers under the paper's
//! application-level byte counts.

use bytes::Bytes;
use jwins_sim::SimTime;
use std::fmt;

/// Frame magic: "JWNT" (JWins Network Transport).
pub const MAGIC: [u8; 4] = *b"JWNT";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Fixed header length in bytes: magic(4) + version(1) + kind(1) +
/// from(4) + to(4) + sent_round(8) + sent_ns(8) + payload_len(4).
pub const HEADER_LEN: usize = 34;

/// The protocol message taxonomy. One kind today; the discriminant is on
/// the wire so adding control messages (handshakes, pings) later does not
/// break old frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A round's model-sharing gossip message.
    Gossip = 0,
}

impl FrameKind {
    fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(FrameKind::Gossip),
            _ => None,
        }
    }
}

/// A decoded frame: everything the receiving session needs to rebuild an
/// [`crate::Envelope`] (the arrival stamp is the receiver's, not the
/// wire's).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Sending node.
    pub from: usize,
    /// Intended receiver (validated against the session that read it).
    pub to: usize,
    /// The sender's local round stamp.
    pub sent_round: usize,
    /// The sender's clock at send time, on the transport's time axis.
    pub sent: SimTime,
    /// The message body (zero-copy slice of the wire buffer).
    pub payload: Bytes,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a header.
    TooShort {
        /// Bytes actually present.
        got: usize,
    },
    /// The magic bytes did not match [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion {
        /// The version byte on the wire.
        got: u8,
    },
    /// Unknown [`FrameKind`] discriminant.
    BadKind {
        /// The kind byte on the wire.
        got: u8,
    },
    /// The length prefix disagrees with the buffer length.
    LengthMismatch {
        /// Payload length the header declared.
        declared: usize,
        /// Payload bytes actually present.
        got: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort { got } => {
                write!(f, "frame too short: {got} bytes < {HEADER_LEN}-byte header")
            }
            FrameError::BadMagic => write!(f, "bad frame magic (expected JWNT)"),
            FrameError::BadVersion { got } => {
                write!(f, "unknown frame version {got} (expected {VERSION})")
            }
            FrameError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            FrameError::LengthMismatch { declared, got } => {
                write!(f, "frame length mismatch: header declares {declared} payload bytes, buffer holds {got}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one message into a wire frame.
pub fn encode(
    kind: FrameKind,
    from: usize,
    to: usize,
    sent_round: usize,
    sent: SimTime,
    payload: &Bytes,
) -> Bytes {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(kind as u8);
    buf.extend_from_slice(&(from as u32).to_le_bytes());
    buf.extend_from_slice(&(to as u32).to_le_bytes());
    buf.extend_from_slice(&(sent_round as u64).to_le_bytes());
    buf.extend_from_slice(&sent.0.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    Bytes::from(buf)
}

/// Decodes a wire frame, validating magic, version, kind and length.
///
/// # Errors
///
/// Returns the first [`FrameError`] the validation walk hits.
pub fn decode(wire: &Bytes) -> Result<Frame, FrameError> {
    if wire.len() < HEADER_LEN {
        return Err(FrameError::TooShort { got: wire.len() });
    }
    if wire[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if wire[4] != VERSION {
        return Err(FrameError::BadVersion { got: wire[4] });
    }
    let kind = FrameKind::from_wire(wire[5]).ok_or(FrameError::BadKind { got: wire[5] })?;
    let u32_at = |i: usize| u32::from_le_bytes(wire[i..i + 4].try_into().expect("4 bytes"));
    let u64_at = |i: usize| u64::from_le_bytes(wire[i..i + 8].try_into().expect("8 bytes"));
    let from = u32_at(6) as usize;
    let to = u32_at(10) as usize;
    let sent_round = u64_at(14) as usize;
    let sent = SimTime(u64_at(22));
    let declared = u32_at(30) as usize;
    let got = wire.len() - HEADER_LEN;
    if declared != got {
        return Err(FrameError::LengthMismatch { declared, got });
    }
    Ok(Frame {
        kind,
        from,
        to,
        sent_round,
        sent,
        payload: wire.slice(HEADER_LEN..wire.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let payload = Bytes::from(vec![7u8, 8, 9]);
        let wire = encode(FrameKind::Gossip, 3, 11, 42, SimTime(1_000_000), &payload);
        assert_eq!(wire.len(), HEADER_LEN + 3);
        let frame = decode(&wire).expect("valid frame");
        assert_eq!(frame.kind, FrameKind::Gossip);
        assert_eq!(frame.from, 3);
        assert_eq!(frame.to, 11);
        assert_eq!(frame.sent_round, 42);
        assert_eq!(frame.sent, SimTime(1_000_000));
        assert_eq!(&frame.payload[..], &[7, 8, 9]);
    }

    #[test]
    fn empty_payloads_are_legal() {
        let wire = encode(FrameKind::Gossip, 0, 1, 0, SimTime::ZERO, &Bytes::new());
        assert_eq!(wire.len(), HEADER_LEN);
        let frame = decode(&wire).expect("valid frame");
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let good = encode(
            FrameKind::Gossip,
            1,
            2,
            3,
            SimTime(4),
            &Bytes::from(vec![5u8]),
        );

        assert_eq!(
            decode(&good.slice(0..10)),
            Err(FrameError::TooShort { got: 10 })
        );

        let mut bad_magic = good.to_vec();
        bad_magic[0] = b'X';
        assert_eq!(decode(&Bytes::from(bad_magic)), Err(FrameError::BadMagic));

        let mut bad_version = good.to_vec();
        bad_version[4] = 99;
        assert_eq!(
            decode(&Bytes::from(bad_version)),
            Err(FrameError::BadVersion { got: 99 })
        );

        let mut bad_kind = good.to_vec();
        bad_kind[5] = 7;
        assert_eq!(
            decode(&Bytes::from(bad_kind)),
            Err(FrameError::BadKind { got: 7 })
        );

        let mut truncated = good.to_vec();
        truncated.pop();
        assert_eq!(
            decode(&Bytes::from(truncated)),
            Err(FrameError::LengthMismatch {
                declared: 1,
                got: 0
            })
        );
    }

    #[test]
    fn errors_render_human_readable() {
        let text = format!(
            "{} / {} / {}",
            FrameError::BadMagic,
            FrameError::BadVersion { got: 2 },
            FrameError::LengthMismatch {
                declared: 4,
                got: 2
            }
        );
        assert!(text.contains("JWNT"));
        assert!(text.contains("version 2"));
        assert!(text.contains("declares 4"));
    }
}
