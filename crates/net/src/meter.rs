//! Per-node traffic accounting.

/// The byte composition of one message: model payload vs. sparsification
/// metadata (index lists, seeds, headers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteBreakdown {
    /// Bytes carrying parameter/coefficient values.
    pub payload: usize,
    /// Bytes carrying indices, seeds and framing.
    pub metadata: usize,
}

impl ByteBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.payload + self.metadata
    }
}

/// Cumulative counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Payload component of `bytes_sent`.
    pub payload_sent: u64,
    /// Metadata component of `bytes_sent`.
    pub metadata_sent: u64,
    /// Number of messages sent.
    pub messages_sent: u64,
    /// Messages lost in the network: lossy-link drops plus deliveries
    /// destroyed by node crashes (the connection died mid-transfer or the
    /// receiving host was down).
    pub messages_dropped: u64,
    /// Messages discarded by the staleness policy: TTL expiry at mailbox
    /// drain or an over-cap drop at mix time. Kept separate from
    /// [`Self::messages_dropped`] so staleness losses are distinguishable
    /// from link/host losses.
    pub messages_expired: u64,
}

impl TrafficStats {
    /// Records an outgoing message.
    pub fn record_send(&mut self, breakdown: ByteBreakdown) {
        self.bytes_sent += breakdown.total() as u64;
        self.payload_sent += breakdown.payload as u64;
        self.metadata_sent += breakdown.metadata as u64;
        self.messages_sent += 1;
    }

    /// Records an incoming message.
    pub fn record_receive(&mut self, bytes: usize) {
        self.bytes_received += bytes as u64;
    }

    /// Records a message lost in flight (already counted as sent).
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Records a message destroyed *after* delivery metering (a crash killed
    /// the connection or the receiving host): reverses the receive
    /// accounting and counts the loss as a drop.
    ///
    /// # Panics
    ///
    /// Panics (debug) if more bytes are reversed than were ever received.
    /// Release builds saturate instead: a double-reversal must surface as a
    /// zeroed counter in a bench run, never as a wrapped ~2^64 one.
    pub fn record_kill(&mut self, bytes: usize) {
        debug_assert!(self.bytes_received >= bytes as u64);
        self.bytes_received = self.bytes_received.saturating_sub(bytes as u64);
        self.messages_dropped += 1;
    }

    /// Records a message discarded by the staleness policy (TTL lapse or
    /// over-cap drop). The bytes did arrive, so receive accounting stands.
    pub fn record_expired(&mut self) {
        self.messages_expired += 1;
    }

    /// Merges counters from another node (for cluster-wide totals).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.payload_sent += other.payload_sent;
        self.metadata_sent += other.metadata_sent;
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
        self.messages_expired += other.messages_expired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = ByteBreakdown {
            payload: 100,
            metadata: 28,
        };
        assert_eq!(b.total(), 128);
    }

    #[test]
    fn expiry_and_kill_accounting() {
        let mut s = TrafficStats::default();
        s.record_receive(10);
        s.record_receive(6);
        s.record_expired();
        assert_eq!(s.messages_expired, 1);
        assert_eq!(s.messages_dropped, 0, "expiry is not a network drop");
        assert_eq!(s.bytes_received, 16, "expired bytes did arrive");
        s.record_kill(6);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.bytes_received, 10, "killed bytes never arrived");
        let mut merged = TrafficStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.messages_expired, 2);
        assert_eq!(merged.messages_dropped, 2);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn kill_reversal_saturates_in_release() {
        // A double-reversal (two purges racing over the same accounting in
        // a buggy caller) must zero the counter, not wrap it to ~2^64 and
        // poison every bytes-per-accuracy figure downstream.
        let mut s = TrafficStats::default();
        s.record_receive(4);
        s.record_kill(10);
        assert_eq!(s.bytes_received, 0);
        assert_eq!(s.messages_dropped, 1);
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = TrafficStats::default();
        a.record_send(ByteBreakdown {
            payload: 10,
            metadata: 2,
        });
        a.record_send(ByteBreakdown {
            payload: 5,
            metadata: 1,
        });
        a.record_receive(7);
        assert_eq!(a.bytes_sent, 18);
        assert_eq!(a.payload_sent, 15);
        assert_eq!(a.metadata_sent, 3);
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.bytes_received, 7);
        let mut b = TrafficStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.bytes_sent, 36);
        assert_eq!(b.messages_sent, 4);
    }
}
