//! Per-node traffic accounting.

/// The byte composition of one message: model payload vs. sparsification
/// metadata (index lists, seeds, headers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteBreakdown {
    /// Bytes carrying parameter/coefficient values.
    pub payload: usize,
    /// Bytes carrying indices, seeds and framing.
    pub metadata: usize,
}

impl ByteBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.payload + self.metadata
    }
}

/// Cumulative counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Payload component of `bytes_sent`.
    pub payload_sent: u64,
    /// Metadata component of `bytes_sent`.
    pub metadata_sent: u64,
    /// Number of messages sent.
    pub messages_sent: u64,
    /// Messages the network dropped in flight (lossy links only).
    pub messages_dropped: u64,
}

impl TrafficStats {
    /// Records an outgoing message.
    pub fn record_send(&mut self, breakdown: ByteBreakdown) {
        self.bytes_sent += breakdown.total() as u64;
        self.payload_sent += breakdown.payload as u64;
        self.metadata_sent += breakdown.metadata as u64;
        self.messages_sent += 1;
    }

    /// Records an incoming message.
    pub fn record_receive(&mut self, bytes: usize) {
        self.bytes_received += bytes as u64;
    }

    /// Records a message lost in flight (already counted as sent).
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Merges counters from another node (for cluster-wide totals).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.payload_sent += other.payload_sent;
        self.metadata_sent += other.metadata_sent;
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = ByteBreakdown {
            payload: 100,
            metadata: 28,
        };
        assert_eq!(b.total(), 128);
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = TrafficStats::default();
        a.record_send(ByteBreakdown {
            payload: 10,
            metadata: 2,
        });
        a.record_send(ByteBreakdown {
            payload: 5,
            metadata: 1,
        });
        a.record_receive(7);
        assert_eq!(a.bytes_sent, 18);
        assert_eq!(a.payload_sent, 15);
        assert_eq!(a.metadata_sent, 3);
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.bytes_received, 7);
        let mut b = TrafficStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.bytes_sent, 36);
        assert_eq!(b.messages_sent, 4);
    }
}
