//! The real-concurrency backend: [`ThreadChannelTransport`].
//!
//! One crossbeam channel per directed edge, one peer session per node, and
//! *wall-clock* timestamps mapped onto the [`SimTime`] axis (nanoseconds
//! since transport construction). The engine's channel driver runs one OS
//! thread per node against this transport, so messages really do cross
//! thread boundaries, really are framed/validated ([`crate::framing`]) and
//! really arrive in nondeterministic order — the relaxed real-world regime
//! the sim backend only models.
//!
//! Byte accounting is deliberately identical to [`crate::SimNetwork`]:
//! the sender is charged at send time, the receiver credited at enqueue
//! time, frame headers excluded — so a real run's `RoundRecord` traffic
//! columns are directly comparable to the sim oracle's (the cross-check
//! harness depends on this).
//!
//! What this backend does **not** provide: the loss model (a virtual-time
//! construct; real links here are reliable channels) and any purge-driven
//! fault scripting — config validation rejects those combinations before a
//! run starts. Purges still work (the conformance suite exercises them);
//! they map "in flight" to "still in the channel" and "arrived" to "pulled
//! into the mailbox".

use crate::framing::{self, FrameKind};
use crate::meter::TrafficStats;
use crate::transport::{
    drain_mailbox, Drained, Envelope, MeasuredFlight, PendingSend, PurgeReport, PurgeScope,
    Transport,
};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use jwins_sim::SimTime;
use parking_lot::Mutex;
use std::time::Instant;

/// One node's receiving state: the inbound channel ends for every sender,
/// plus the mailbox of already-pulled (i.e. *arrived*) envelopes.
struct Session {
    /// Inbound wire, indexed by sending node.
    inbound: Vec<Receiver<Bytes>>,
    /// Arrived messages awaiting a drain.
    mailbox: Mutex<Vec<Envelope>>,
}

/// An `n`-node transport over per-edge channels and wall-clock time.
pub struct ThreadChannelTransport {
    /// Wall-clock origin of the transport's [`SimTime`] axis.
    start: Instant,
    /// Outbound wire, indexed `[from][to]`.
    senders: Vec<Vec<Sender<Bytes>>>,
    /// Per-node receiving sessions.
    sessions: Vec<Session>,
    /// Per-node traffic counters (same accounting as the sim backend).
    stats: Vec<Mutex<TrafficStats>>,
    /// Observational telemetry; sends emit `MsgSend` with wall stamps.
    tracer: Option<std::sync::Arc<jwins_trace::Tracer>>,
    /// Accumulated `(latency seconds, messages)` over every pulled message.
    flight: Mutex<(f64, u64)>,
}

impl std::fmt::Debug for ThreadChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadChannelTransport")
            .field("nodes", &self.sessions.len())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

impl ThreadChannelTransport {
    /// Creates the full directed-edge mesh between `n` nodes.
    pub fn new(n: usize) -> Self {
        let mut senders: Vec<Vec<Sender<Bytes>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut inbound: Vec<Vec<Receiver<Bytes>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        for outgoing in senders.iter_mut() {
            for incoming in inbound.iter_mut() {
                let (tx, rx) = crossbeam::channel::unbounded();
                outgoing.push(tx);
                incoming.push(rx);
            }
        }
        // Re-index inbound from [to][push-order] to [to][from]: the pushes
        // above happen from-major, so inbound[to] is already ordered by
        // `from`. (Each inner loop pushes exactly one rx per `to`.)
        let sessions = inbound
            .into_iter()
            .map(|inbound| Session {
                inbound,
                mailbox: Mutex::new(Vec::new()),
            })
            .collect();
        Self {
            start: Instant::now(),
            senders,
            sessions,
            stats: (0..n)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            tracer: None,
            flight: Mutex::new((0.0, 0)),
        }
    }

    /// Decodes a wire frame into an envelope stamped with the pull-side
    /// arrival time, accumulating the measured flight latency.
    ///
    /// Malformed frames are a bug in *this* process (both channel ends live
    /// here), so decode failure panics instead of pretending to be a
    /// recoverable network condition.
    fn admit(&self, expected_from: usize, node: usize, wire: Bytes) -> Envelope {
        let frame = framing::decode(&wire).expect("in-process frame must decode");
        assert_eq!(frame.to, node, "frame routed to the wrong session");
        assert_eq!(frame.from, expected_from, "frame on the wrong edge");
        // The monotone clock makes now >= sent across threads; max() guards
        // the stamp anyway so Envelope invariants hold unconditionally.
        let arrives = self.now().max(frame.sent);
        {
            let mut flight = self.flight.lock();
            flight.0 += arrives.since(frame.sent).as_secs_f64();
            flight.1 += 1;
        }
        Envelope {
            from: frame.from,
            payload: frame.payload,
            sent: frame.sent,
            arrives,
            sent_round: frame.sent_round,
        }
    }

    /// Pulls everything currently on `node`'s inbound wires into the given
    /// (already locked) mailbox, in sender order then per-edge FIFO order.
    fn pull_locked(&self, node: usize, mailbox: &mut Vec<Envelope>) {
        for (from, rx) in self.sessions[node].inbound.iter().enumerate() {
            while let Ok(wire) = rx.try_recv() {
                mailbox.push(self.admit(from, node, wire));
            }
        }
    }
}

impl Transport for ThreadChannelTransport {
    fn len(&self) -> usize {
        self.sessions.len()
    }

    fn set_tracer(&mut self, tracer: std::sync::Arc<jwins_trace::Tracer>) {
        self.tracer = Some(tracer);
    }

    fn send(&self, send: PendingSend) {
        let PendingSend {
            from,
            to,
            payload,
            breakdown,
            sent,
            arrives,
            sent_round,
        } = send;
        assert!(
            from < self.len() && to < self.len(),
            "endpoint out of range"
        );
        assert!(arrives >= sent, "message cannot arrive before it was sent");
        debug_assert_eq!(
            breakdown.total(),
            payload.len(),
            "breakdown must account for every byte"
        );
        self.stats[from].lock().record_send(breakdown);
        if let Some(tracer) = &self.tracer {
            // The true arrival is unknowable at send time on a real wire;
            // the stamp mirrors the send (arrives_ns == t_ns), and the
            // measured latency shows up in `measured_flight` instead.
            tracer.emit(jwins_trace::TraceEvent::MsgSend {
                t_ns: sent.0,
                from: from as u32,
                to: to as u32,
                round: sent_round as u32,
                bytes: payload.len() as u64,
                arrives_ns: arrives.0,
            });
        }
        self.stats[to].lock().record_receive(payload.len());
        let wire = framing::encode(FrameKind::Gossip, from, to, sent_round, sent, &payload);
        self.senders[from][to]
            .send(wire)
            .expect("peer session owned by this transport cannot hang up");
    }

    fn drain(&self, node: usize, deadline: SimTime, ttl: Option<SimTime>) -> Drained {
        let mut mailbox = self.sessions[node].mailbox.lock();
        self.pull_locked(node, &mut mailbox);
        // A MAX deadline means "everything that has arrived by now": TTL
        // ages are measured at the wall clock, the only meaningful "now"
        // when the caller gave no deadline.
        let age_ref = if deadline == SimTime::MAX {
            self.now()
        } else {
            deadline
        };
        drain_mailbox(&mut mailbox, deadline, age_ref, ttl)
    }

    fn record_expired(&self, node: usize, count: u64) {
        if count == 0 {
            return;
        }
        let mut stats = self.stats[node].lock();
        for _ in 0..count {
            stats.record_expired();
        }
    }

    fn purge(&self, scope: PurgeScope) -> PurgeReport {
        let kill_all = |node: usize, victims: Vec<Envelope>| -> PurgeReport {
            let mut stats = self.stats[node].lock();
            let mut report = PurgeReport::default();
            for env in &victims {
                stats.record_kill(env.payload.len());
                report.messages += 1;
                report.bytes += env.payload.len() as u64;
            }
            report
        };
        match scope {
            PurgeScope::Inbox { node } => {
                let victims = {
                    let mut mailbox = self.sessions[node].mailbox.lock();
                    self.pull_locked(node, &mut mailbox);
                    std::mem::take(&mut *mailbox)
                };
                kill_all(node, victims)
            }
            PurgeScope::ArrivedBy { node, deadline } => {
                let mut victims = Vec::new();
                {
                    let mut mailbox = self.sessions[node].mailbox.lock();
                    self.pull_locked(node, &mut mailbox);
                    mailbox.retain(|env| {
                        if env.arrives <= deadline {
                            victims.push(env.clone());
                            false
                        } else {
                            true
                        }
                    });
                }
                kill_all(node, victims)
            }
            PurgeScope::InFlightFrom { from, cutoff: _ } => {
                // On a real wire "in flight" is "still in the channel";
                // the wall clock has no in-flight messages from the past,
                // so the cutoff is implicit: everything unpulled dies.
                assert!(from < self.len(), "endpoint out of range");
                let mut report = PurgeReport::default();
                for (to, session) in self.sessions.iter().enumerate() {
                    let mut victims = Vec::new();
                    while let Ok(wire) = session.inbound[from].try_recv() {
                        victims.push(self.admit(from, to, wire));
                    }
                    let r = kill_all(to, victims);
                    report.messages += r.messages;
                    report.bytes += r.bytes;
                }
                report
            }
            PurgeScope::Link {
                from,
                to,
                sent_round,
            } => {
                assert!(
                    from < self.len() && to < self.len(),
                    "endpoint out of range"
                );
                let mut victims = Vec::new();
                {
                    let mut mailbox = self.sessions[to].mailbox.lock();
                    // Pull the edge's channel so in-flight messages are
                    // subject to the kill too, then filter the mailbox.
                    while let Ok(wire) = self.sessions[to].inbound[from].try_recv() {
                        mailbox.push(self.admit(from, to, wire));
                    }
                    mailbox.retain(|env| {
                        if env.from == from && sent_round.is_none_or(|r| env.sent_round == r) {
                            victims.push(env.clone());
                            false
                        } else {
                            true
                        }
                    });
                }
                kill_all(to, victims)
            }
        }
    }

    fn pending(&self, node: usize) -> usize {
        let session = &self.sessions[node];
        session.mailbox.lock().len() + session.inbound.iter().map(|rx| rx.len()).sum::<usize>()
    }

    fn stats(&self, node: usize) -> TrafficStats {
        *self.stats[node].lock()
    }

    fn total_stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for s in &self.stats {
            total.merge(&s.lock());
        }
        total
    }

    fn now(&self) -> SimTime {
        SimTime(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn measured_flight(&self) -> Option<MeasuredFlight> {
        let (latency_sum_s, messages) = *self.flight.lock();
        if messages == 0 {
            return None;
        }
        Some(MeasuredFlight {
            mean_latency_s: latency_sum_s / messages as f64,
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::ByteBreakdown;

    fn bulk(net: &ThreadChannelTransport, from: usize, to: usize, body: Vec<u8>) {
        let len = body.len();
        let mut send = PendingSend::bulk(
            from,
            to,
            Bytes::from(body),
            ByteBreakdown {
                payload: len,
                metadata: 0,
            },
        );
        // Stamp with the transport clock, as the channel driver does.
        send.sent = net.now();
        send.arrives = send.sent;
        net.send(send);
    }

    #[test]
    fn delivers_across_real_threads() {
        let net = std::sync::Arc::new(ThreadChannelTransport::new(3));
        let handles: Vec<_> = [0usize, 1]
            .into_iter()
            .map(|from| {
                let net = std::sync::Arc::clone(&net);
                std::thread::spawn(move || {
                    for k in 0..50u8 {
                        bulk(&net, from, 2, vec![k; 4]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sender threads");
        }
        let drained = net.drain(2, SimTime::MAX, None);
        assert_eq!(drained.envelopes.len(), 100);
        assert_eq!(drained.expired, 0);
        assert_eq!(net.stats(2).bytes_received, 400);
        assert_eq!(net.total_stats().messages_sent, 100);
        let flight = net.measured_flight().expect("messages moved");
        assert_eq!(flight.messages, 100);
        assert!(flight.mean_latency_s >= 0.0);
    }

    #[test]
    fn per_edge_fifo_order_survives_the_wire() {
        let net = ThreadChannelTransport::new(2);
        for k in 0..20u8 {
            bulk(&net, 0, 1, vec![k]);
        }
        let drained = net.drain(1, SimTime::MAX, None).envelopes;
        let bodies: Vec<u8> = drained.iter().map(|e| e.payload[0]).collect();
        assert_eq!(bodies, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn wall_clock_maps_onto_the_virtual_axis() {
        let net = ThreadChannelTransport::new(1);
        let a = net.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = net.now();
        assert!(b > a, "clock advances");
        assert!(b.as_secs_f64() < 60.0, "axis starts at construction");
    }

    #[test]
    fn ttl_measures_age_at_the_wall_clock() {
        let net = ThreadChannelTransport::new(2);
        bulk(&net, 0, 1, vec![1u8]);
        std::thread::sleep(std::time::Duration::from_millis(5));
        // A TTL far larger than the sleep keeps the message.
        let kept = net.drain(1, SimTime::MAX, Some(SimTime::from_secs_f64(30.0)));
        assert_eq!(kept.envelopes.len(), 1);
        assert_eq!(kept.expired, 0);
        // A nanosecond TTL expires anything that crossed a real wire.
        bulk(&net, 0, 1, vec![2u8]);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let expired = net.drain(1, SimTime::MAX, Some(SimTime(1)));
        assert!(expired.envelopes.is_empty());
        assert_eq!(expired.expired, 1);
        net.record_expired(1, expired.expired);
        assert_eq!(net.stats(1).messages_expired, 1);
    }

    #[test]
    fn purge_inbox_reaches_into_the_channels() {
        let net = ThreadChannelTransport::new(2);
        bulk(&net, 0, 1, vec![0u8; 4]);
        bulk(&net, 0, 1, vec![0u8; 6]);
        assert_eq!(net.pending(1), 2);
        let report = net.purge(PurgeScope::Inbox { node: 1 });
        assert_eq!(
            report,
            PurgeReport {
                messages: 2,
                bytes: 10
            }
        );
        assert_eq!(net.pending(1), 0);
        assert_eq!(net.stats(1).bytes_received, 0, "receive credit reversed");
    }

    #[test]
    fn purge_link_filters_by_round_across_wire_and_mailbox() {
        let net = ThreadChannelTransport::new(3);
        let send_round = |round: usize| {
            let mut s = PendingSend::bulk(
                0,
                2,
                Bytes::from(vec![round as u8; 2]),
                ByteBreakdown {
                    payload: 2,
                    metadata: 0,
                },
            );
            s.sent = net.now();
            s.arrives = s.sent;
            s.sent_round = round;
            net.send(s);
        };
        send_round(3);
        send_round(4);
        // Pull round 3+4 into the mailbox, then wire up one more round-3.
        assert_eq!(net.pending(2), 2);
        let _ = net.drain(2, SimTime::ZERO, None); // pulls, delivers nothing
        send_round(3);
        bulk(&net, 1, 2, vec![9u8]); // other edge survives
        let report = net.purge(PurgeScope::Link {
            from: 0,
            to: 2,
            sent_round: Some(3),
        });
        assert_eq!(report.messages, 2);
        assert_eq!(report.bytes, 4);
        let survivors = net.drain(2, SimTime::MAX, None).envelopes;
        let tags: Vec<(usize, usize)> = survivors.iter().map(|e| (e.from, e.sent_round)).collect();
        assert!(tags.contains(&(0, 4)));
        assert!(tags.contains(&(1, 0)));
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn purge_in_flight_spares_the_mailbox() {
        let net = ThreadChannelTransport::new(2);
        bulk(&net, 0, 1, vec![1u8]);
        // Arrived: pulled into the mailbox (ZERO deadline delivers nothing
        // but the pull happened).
        let _ = net.drain(1, SimTime::ZERO, None);
        bulk(&net, 0, 1, vec![2u8, 3]);
        let report = net.purge(PurgeScope::InFlightFrom {
            from: 0,
            cutoff: SimTime::ZERO,
        });
        assert_eq!(report.messages, 1);
        assert_eq!(report.bytes, 2);
        let survivors = net.drain(1, SimTime::MAX, None).envelopes;
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].payload[0], 1);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn invalid_endpoint_panics() {
        bulk(&ThreadChannelTransport::new(1), 0, 1, vec![]);
    }
}
