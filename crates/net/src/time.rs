//! Simulated wall-clock model.
//!
//! The paper reports wall-clock time on a 6-machine cluster where nodes are
//! CPU-rich but bandwidth-constrained (e.g. "JWINS took 14 min and random
//! sampling 53 min", §IV-C-3). In a single-process simulation, time must be
//! modelled: a bulk-synchronous round costs local compute plus one message
//! latency plus the transfer time of the *slowest* node (rounds are
//! barrier-synchronized, so the stragglers dominate — the same reason the
//! paper's low-budget experiments win on time).

use serde::{Deserialize, Serialize};

/// Parameters of the per-round time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    /// Seconds of local compute per training round (τ SGD steps).
    pub compute_s: f64,
    /// Link bandwidth in bytes/second (per node).
    pub bandwidth_bps: f64,
    /// One-way message latency in seconds.
    pub latency_s: f64,
}

impl TimeModel {
    /// A 100 Mbit/s edge-device profile with 5 ms latency.
    pub fn edge_100mbit(compute_s: f64) -> Self {
        Self {
            compute_s,
            bandwidth_bps: 100.0e6 / 8.0,
            latency_s: 0.005,
        }
    }

    /// Seconds one synchronous round takes when the busiest node sends
    /// `max_node_bytes` in total.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn round_seconds(&self, max_node_bytes: u64) -> f64 {
        assert!(self.bandwidth_bps > 0.0, "bandwidth must be positive");
        self.compute_s + self.latency_s + max_node_bytes as f64 / self.bandwidth_bps
    }
}

impl Default for TimeModel {
    /// Default profile used by the experiment harnesses.
    fn default() -> Self {
        Self::edge_100mbit(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_time_composition() {
        let m = TimeModel {
            compute_s: 1.0,
            bandwidth_bps: 1000.0,
            latency_s: 0.5,
        };
        assert!((m.round_seconds(2000) - (1.0 + 0.5 + 2.0)).abs() < 1e-12);
        assert!((m.round_seconds(0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fewer_bytes_is_faster() {
        let m = TimeModel::default();
        assert!(m.round_seconds(1_000) < m.round_seconds(1_000_000));
    }

    #[test]
    fn serde_round_trip_is_lossless() {
        let m = TimeModel {
            compute_s: 0.125,
            bandwidth_bps: 12.5e6,
            latency_s: 0.005,
        };
        let text = serde::json::to_string(&m);
        let back: TimeModel = serde::json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
