//! The deterministic in-memory backend: [`SimNetwork`].
//!
//! A [`SimNetwork`] connects `n` nodes on the *virtual* time axis. Senders
//! enqueue [`Envelope`]s into the receiver's mailbox; receivers drain their
//! mailbox at their local virtual clock. Payloads are reference-counted
//! [`bytes::Bytes`], so broadcasting one message to `d` neighbours costs one
//! allocation while still being counted `d` times by the meter — exactly
//! like a TCP fan-out. Every observable — delivery sets, drain order, loss
//! pattern, counters — is a pure function of the sends it was given, which
//! is what makes this backend the determinism *oracle* the real
//! [`crate::ThreadChannelTransport`] is cross-checked against.

use crate::meter::TrafficStats;
use crate::transport::{
    drain_mailbox, Drained, Envelope, PendingSend, PurgeReport, PurgeScope, Transport,
};
use jwins_sim::SimTime;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Independent per-message loss on every directed link, deterministic in
/// `(seed, from, to, per-link sequence number)`.
///
/// Dropped messages are still metered as sent (the sender paid for the
/// bytes) but never reach the receiver's mailbox; the drop is counted in
/// [`TrafficStats::messages_dropped`]. Node-level churn is a different
/// failure mode — see the engine's participation models.
///
/// # Example
///
/// ```
/// use jwins_net::{ByteBreakdown, LossModel, PendingSend, SimNetwork, Transport};
/// use jwins_sim::SimTime;
/// use bytes::Bytes;
///
/// let net = SimNetwork::lossy(2, LossModel::new(0.5, 7));
/// for _ in 0..100 {
///     net.send(PendingSend::bulk(
///         0,
///         1,
///         Bytes::from(vec![0u8]),
///         ByteBreakdown { payload: 1, metadata: 0 },
///     ));
/// }
/// let delivered = net.drain(1, SimTime::MAX, None).envelopes.len() as u64;
/// assert_eq!(delivered + net.stats(0).messages_dropped, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    probability: f64,
    seed: u64,
}

impl LossModel {
    /// Creates a loss model dropping each message with `probability`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= probability < 1`.
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "loss probability must be in [0, 1)"
        );
        Self { probability, seed }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    fn drops(&self, from: usize, to: usize, sequence: u64) -> bool {
        // SplitMix64 over (seed, from, to, sequence).
        let mut z = self
            .seed
            .wrapping_add((from as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((to as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((sequence + 1).wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = (z ^ (z >> 31)) as f64 / u64::MAX as f64;
        u < self.probability
    }
}

/// An in-process virtual-time network between `n` nodes — the [`Transport`]
/// the engine uses by default, and the determinism oracle for every other
/// backend.
#[derive(Debug)]
pub struct SimNetwork {
    mailboxes: Vec<Mutex<Vec<Envelope>>>,
    stats: Vec<Mutex<TrafficStats>>,
    loss: Option<LossModel>,
    /// Per-directed-link sequence numbers driving the loss hash.
    sequences: Mutex<HashMap<(usize, usize), u64>>,
    /// Telemetry for the transport's sequential decision points (send and
    /// loss-model drop). Purges and expiries are reported by the engine,
    /// which knows the virtual time and event context — never from the
    /// parallel execute phase (see the `jwins_trace` determinism contract).
    tracer: Option<std::sync::Arc<jwins_trace::Tracer>>,
}

impl SimNetwork {
    /// Creates a reliable network with `n` empty mailboxes.
    pub fn new(n: usize) -> Self {
        Self {
            mailboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            stats: (0..n)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            loss: None,
            sequences: Mutex::new(HashMap::new()),
            tracer: None,
        }
    }

    /// Creates a lossy network: each message independently dropped per
    /// [`LossModel`]. Determinism holds per directed link regardless of the
    /// interleaving of sends on other links.
    pub fn lossy(n: usize, loss: LossModel) -> Self {
        Self {
            loss: Some(loss),
            ..Self::new(n)
        }
    }

    /// The loss model in effect, if any.
    pub fn loss_model(&self) -> Option<LossModel> {
        self.loss
    }
}

impl Transport for SimNetwork {
    fn len(&self) -> usize {
        self.mailboxes.len()
    }

    fn set_tracer(&mut self, tracer: std::sync::Arc<jwins_trace::Tracer>) {
        self.tracer = Some(tracer);
    }

    fn send(&self, send: PendingSend) {
        let PendingSend {
            from,
            to,
            payload,
            breakdown,
            sent,
            arrives,
            sent_round,
        } = send;
        assert!(
            from < self.len() && to < self.len(),
            "endpoint out of range"
        );
        assert!(arrives >= sent, "message cannot arrive before it was sent");
        debug_assert_eq!(
            breakdown.total(),
            payload.len(),
            "breakdown must account for every byte"
        );
        self.stats[from].lock().record_send(breakdown);
        if let Some(loss) = &self.loss {
            let sequence = {
                let mut sequences = self.sequences.lock();
                let counter = sequences.entry((from, to)).or_insert(0);
                let current = *counter;
                *counter += 1;
                current
            };
            if loss.drops(from, to, sequence) {
                self.stats[from].lock().record_drop();
                if let Some(tracer) = &self.tracer {
                    tracer.emit(jwins_trace::TraceEvent::MsgDrop {
                        t_ns: sent.0,
                        from: from as u32,
                        to: to as u32,
                        round: sent_round as u32,
                        bytes: payload.len() as u64,
                    });
                }
                return;
            }
        }
        if let Some(tracer) = &self.tracer {
            tracer.emit(jwins_trace::TraceEvent::MsgSend {
                t_ns: sent.0,
                from: from as u32,
                to: to as u32,
                round: sent_round as u32,
                bytes: payload.len() as u64,
                arrives_ns: arrives.0,
            });
        }
        self.stats[to].lock().record_receive(payload.len());
        self.mailboxes[to].lock().push(Envelope {
            from,
            payload,
            sent,
            arrives,
            sent_round,
        });
    }

    fn drain(&self, node: usize, deadline: SimTime, ttl: Option<SimTime>) -> Drained {
        let mut mailbox = self.mailboxes[node].lock();
        // A MAX deadline means "everything ever sent" (barrier mode, no
        // clock): TTL ages, were a TTL given, measure at the sim's own
        // now() — the time origin.
        let age_ref = if deadline == SimTime::MAX {
            self.now()
        } else {
            deadline
        };
        drain_mailbox(&mut mailbox, deadline, age_ref, ttl)
    }

    fn record_expired(&self, node: usize, count: u64) {
        if count == 0 {
            return;
        }
        let mut stats = self.stats[node].lock();
        for _ in 0..count {
            stats.record_expired();
        }
    }

    fn purge(&self, scope: PurgeScope) -> PurgeReport {
        match scope {
            PurgeScope::Inbox { node } => {
                let envelopes = { std::mem::take(&mut *self.mailboxes[node].lock()) };
                let mut stats = self.stats[node].lock();
                let mut bytes = 0u64;
                for env in &envelopes {
                    stats.record_kill(env.payload.len());
                    bytes += env.payload.len() as u64;
                }
                PurgeReport {
                    messages: envelopes.len() as u64,
                    bytes,
                }
            }
            PurgeScope::ArrivedBy { node, deadline } => {
                let mut killed_bytes: Vec<usize> = Vec::new();
                {
                    let mut mailbox = self.mailboxes[node].lock();
                    mailbox.retain(|env| {
                        if env.arrives <= deadline {
                            killed_bytes.push(env.payload.len());
                            false
                        } else {
                            true
                        }
                    });
                }
                let mut stats = self.stats[node].lock();
                let mut bytes = 0u64;
                for b in &killed_bytes {
                    stats.record_kill(*b);
                    bytes += *b as u64;
                }
                PurgeReport {
                    messages: killed_bytes.len() as u64,
                    bytes,
                }
            }
            PurgeScope::InFlightFrom { from, cutoff } => {
                assert!(from < self.len(), "endpoint out of range");
                let mut report = PurgeReport::default();
                for (to, mailbox) in self.mailboxes.iter().enumerate() {
                    let mut killed_bytes: Vec<usize> = Vec::new();
                    {
                        let mut mailbox = mailbox.lock();
                        mailbox.retain(|env| {
                            if env.from == from && env.arrives > cutoff {
                                killed_bytes.push(env.payload.len());
                                false
                            } else {
                                true
                            }
                        });
                    }
                    if !killed_bytes.is_empty() {
                        let mut stats = self.stats[to].lock();
                        report.messages += killed_bytes.len() as u64;
                        for bytes in killed_bytes {
                            stats.record_kill(bytes);
                            report.bytes += bytes as u64;
                        }
                    }
                }
                report
            }
            PurgeScope::Link {
                from,
                to,
                sent_round,
            } => {
                assert!(
                    from < self.len() && to < self.len(),
                    "endpoint out of range"
                );
                let mut killed_bytes: Vec<usize> = Vec::new();
                {
                    let mut mailbox = self.mailboxes[to].lock();
                    mailbox.retain(|env| {
                        if env.from == from && sent_round.is_none_or(|r| env.sent_round == r) {
                            killed_bytes.push(env.payload.len());
                            false
                        } else {
                            true
                        }
                    });
                }
                if killed_bytes.is_empty() {
                    return PurgeReport::default();
                }
                let mut stats = self.stats[to].lock();
                let mut bytes = 0u64;
                for b in &killed_bytes {
                    stats.record_kill(*b);
                    bytes += *b as u64;
                }
                PurgeReport {
                    messages: killed_bytes.len() as u64,
                    bytes,
                }
            }
        }
    }

    fn pending(&self, node: usize) -> usize {
        self.mailboxes[node].lock().len()
    }

    fn stats(&self, node: usize) -> TrafficStats {
        *self.stats[node].lock()
    }

    fn total_stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for s in &self.stats {
            total.merge(&s.lock());
        }
        total
    }

    fn now(&self) -> SimTime {
        // The sim has no clock of its own: the engine drives virtual time
        // and passes it into drain/purge explicitly.
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::ByteBreakdown;
    use bytes::Bytes;

    fn breakdown(payload: usize, metadata: usize) -> ByteBreakdown {
        ByteBreakdown { payload, metadata }
    }

    /// The barrier-mode send: zero stamps, round 0.
    fn bulk(net: &SimNetwork, from: usize, to: usize, payload: Bytes, b: ByteBreakdown) {
        net.send(PendingSend::bulk(from, to, payload, b));
    }

    /// A fully stamped send.
    #[allow(clippy::too_many_arguments)]
    fn timed(
        net: &SimNetwork,
        from: usize,
        to: usize,
        payload: Bytes,
        b: ByteBreakdown,
        sent: SimTime,
        arrives: SimTime,
        sent_round: usize,
    ) {
        net.send(PendingSend {
            from,
            to,
            payload,
            breakdown: b,
            sent,
            arrives,
            sent_round,
        });
    }

    /// The barrier-mode drain: everything ever sent, in delivery order.
    fn drain_all(net: &SimNetwork, node: usize) -> Vec<Envelope> {
        net.drain(node, SimTime::MAX, None).envelopes
    }

    #[test]
    fn send_and_drain() {
        let net = SimNetwork::new(3);
        bulk(&net, 0, 1, Bytes::from(vec![1u8, 2, 3]), breakdown(2, 1));
        bulk(&net, 2, 1, Bytes::from(vec![4u8]), breakdown(1, 0));
        let inbox = drain_all(&net, 1);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].from, 0);
        assert_eq!(&inbox[0].payload[..], &[1, 2, 3]);
        assert_eq!(inbox[1].from, 2);
        // Drained mailboxes are empty.
        assert!(drain_all(&net, 1).is_empty());
    }

    #[test]
    fn metering_matches_messages() {
        let net = SimNetwork::new(2);
        bulk(&net, 0, 1, Bytes::from(vec![0u8; 10]), breakdown(8, 2));
        bulk(&net, 0, 1, Bytes::from(vec![0u8; 6]), breakdown(6, 0));
        let s0 = net.stats(0);
        assert_eq!(s0.bytes_sent, 16);
        assert_eq!(s0.payload_sent, 14);
        assert_eq!(s0.metadata_sent, 2);
        assert_eq!(s0.messages_sent, 2);
        assert_eq!(net.stats(1).bytes_received, 16);
        assert_eq!(net.total_stats().bytes_sent, 16);
    }

    #[test]
    fn fan_out_meters_per_receiver() {
        let net = SimNetwork::new(4);
        let payload = Bytes::from(vec![0u8; 5]);
        for to in [1usize, 2, 3] {
            bulk(&net, 0, to, payload.clone(), breakdown(5, 0));
        }
        assert_eq!(net.stats(0).bytes_sent, 15, "fan-out counts per link");
        assert_eq!(net.stats(0).messages_sent, 3);
        for node in 1..4 {
            assert_eq!(drain_all(&net, node).len(), 1);
        }
    }

    #[test]
    fn broadcast_aliases_one_buffer_but_meters_per_edge_logical_bytes() {
        // The zero-copy audit: a broadcast hands every neighbour a clone of
        // one reference-counted payload. The meter must still charge each
        // directed edge the full logical byte count — the wire carried the
        // message d times — while the d delivered envelopes all alias the
        // sender's single allocation. Exact counts are pinned so a future
        // deep-copy (or a metering short-circuit that counts the buffer
        // once) fails loudly.
        let net = SimNetwork::new(5);
        let payload = Bytes::from(vec![0xABu8; 48]);
        let base = payload.as_ptr();
        let neighbors = [1usize, 2, 3, 4];
        for &to in &neighbors {
            bulk(&net, 0, to, payload.clone(), breakdown(40, 8));
        }
        let s = net.stats(0);
        assert_eq!(s.bytes_sent, 4 * 48, "sender pays per edge, not per buffer");
        assert_eq!(s.payload_sent, 4 * 40);
        assert_eq!(s.metadata_sent, 4 * 8);
        assert_eq!(s.messages_sent, 4);
        for &node in &neighbors {
            assert_eq!(net.stats(node).bytes_received, 48);
            let inbox = drain_all(&net, node);
            assert_eq!(inbox.len(), 1);
            assert_eq!(
                inbox[0].payload.as_ptr(),
                base,
                "delivered payload must alias the broadcast buffer"
            );
            assert_eq!(&inbox[0].payload[..], &[0xABu8; 48][..]);
        }
        assert_eq!(net.total_stats().bytes_sent, 192);
        assert_eq!(net.total_stats().bytes_received, 192);
    }

    #[test]
    fn concurrent_sends_are_safe() {
        let net = std::sync::Arc::new(SimNetwork::new(2));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let net = net.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        bulk(&net, 0, 1, Bytes::from(vec![0u8; 3]), breakdown(3, 0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(net.stats(0).messages_sent, 800);
        assert_eq!(drain_all(&net, 1).len(), 800);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn invalid_endpoint_panics() {
        bulk(&SimNetwork::new(1), 0, 1, Bytes::new(), breakdown(0, 0));
    }

    #[test]
    fn lossy_network_drops_at_configured_rate() {
        let net = SimNetwork::lossy(2, LossModel::new(0.25, 7));
        for _ in 0..2000 {
            bulk(&net, 0, 1, Bytes::from(vec![1u8]), breakdown(1, 0));
        }
        let delivered = drain_all(&net, 1).len();
        let dropped = net.stats(0).messages_dropped;
        assert_eq!(delivered as u64 + dropped, 2000);
        let rate = dropped as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.03, "drop rate {rate}");
        // Sender still pays for every byte; receiver sees only delivered.
        assert_eq!(net.stats(0).bytes_sent, 2000);
        assert_eq!(net.stats(1).bytes_received, delivered as u64);
    }

    #[test]
    fn loss_pattern_is_deterministic_per_link() {
        let run = || {
            let net = SimNetwork::lossy(3, LossModel::new(0.5, 3));
            for _ in 0..32 {
                bulk(&net, 0, 1, Bytes::from(vec![0u8]), breakdown(1, 0));
            }
            drain_all(&net, 1).len()
        };
        assert_eq!(run(), run());
        // Interleaving traffic on another link must not disturb link (0,1).
        let net = SimNetwork::lossy(3, LossModel::new(0.5, 3));
        for _ in 0..32 {
            bulk(&net, 2, 1, Bytes::from(vec![9u8]), breakdown(1, 0));
            bulk(&net, 0, 1, Bytes::from(vec![0u8]), breakdown(1, 0));
        }
        let from_zero = drain_all(&net, 1).iter().filter(|e| e.from == 0).count();
        assert_eq!(from_zero, run());
    }

    #[test]
    fn zero_loss_delivers_everything() {
        let net = SimNetwork::lossy(2, LossModel::new(0.0, 1));
        for _ in 0..50 {
            bulk(&net, 0, 1, Bytes::from(vec![0u8]), breakdown(1, 0));
        }
        assert_eq!(drain_all(&net, 1).len(), 50);
        assert_eq!(net.stats(0).messages_dropped, 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn full_loss_rejected() {
        let _ = LossModel::new(1.0, 0);
    }

    #[test]
    fn drain_respects_arrival_times() {
        let net = SimNetwork::new(2);
        let send_at = |sent: u64, arrives: u64, round: usize| {
            timed(
                &net,
                0,
                1,
                Bytes::from(vec![round as u8]),
                breakdown(1, 0),
                SimTime(sent),
                SimTime(arrives),
                round,
            );
        };
        send_at(0, 50, 0); // slow link: pushed first, arrives last
        send_at(10, 20, 1);
        send_at(10, 10, 2);
        // Nothing has arrived before t=10.
        assert!(net.drain(1, SimTime(9), None).envelopes.is_empty());
        assert_eq!(net.pending(1), 3);
        // By t=30 two messages are in, ordered by arrival, not by push.
        let first = net.drain(1, SimTime(30), None).envelopes;
        assert_eq!(
            first.iter().map(|e| e.sent_round).collect::<Vec<_>>(),
            vec![2, 1]
        );
        // The slow message is still in flight, then lands.
        assert_eq!(net.pending(1), 1);
        let late = net.drain(1, SimTime(50), None).envelopes;
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].sent_round, 0);
        assert_eq!(late[0].sent, SimTime(0));
        assert_eq!(late[0].arrives, SimTime(50));
        assert_eq!(net.pending(1), 0);
    }

    #[test]
    fn ttl_expires_old_messages_at_drain() {
        let net = SimNetwork::new(2);
        let send_at = |sent: f64, arrives: f64| {
            timed(
                &net,
                0,
                1,
                Bytes::from(vec![1u8]),
                breakdown(1, 0),
                SimTime::from_secs_f64(sent),
                SimTime::from_secs_f64(arrives),
                0,
            );
        };
        send_at(0.0, 1.0); // age 10 s at drain: expired
        send_at(8.0, 9.0); // age 2 s at drain: fresh
        send_at(0.0, 20.0); // still in flight: untouched
        let ttl = Some(SimTime::from_secs_f64(5.0));
        let drained = net.drain(1, SimTime::from_secs_f64(10.0), ttl);
        assert_eq!(drained.envelopes.len(), 1);
        assert_eq!(drained.envelopes[0].sent, SimTime::from_secs_f64(8.0));
        assert_eq!(drained.expired, 1);
        assert_eq!(
            net.stats(1).messages_expired,
            0,
            "accounting deferred to the caller's commit phase"
        );
        net.record_expired(1, drained.expired);
        assert_eq!(net.stats(1).messages_expired, 1);
        net.record_expired(1, 0); // no-op
        assert_eq!(net.stats(1).messages_expired, 1);
        assert_eq!(net.stats(1).messages_dropped, 0, "distinct from drops");
        assert_eq!(net.pending(1), 1, "in-flight message still queued");
        // The expired bytes did arrive at the host.
        assert_eq!(net.stats(1).bytes_received, 3);
        // No TTL delivers everything arrived.
        let late = net.drain(1, SimTime::from_secs_f64(30.0), None);
        assert_eq!(late.envelopes.len(), 1);
        assert_eq!(late.expired, 0);
    }

    #[test]
    fn send_batch_replays_sends_in_order() {
        let direct = SimNetwork::new(2);
        let batched = SimNetwork::new(2);
        let sends: Vec<PendingSend> = (0..4)
            .map(|k| PendingSend {
                from: 0,
                to: 1,
                payload: Bytes::from(vec![k as u8; k + 1]),
                breakdown: breakdown(k + 1, 0),
                sent: SimTime(k as u64),
                arrives: SimTime(10), // equal arrivals: push order must hold
                sent_round: k,
            })
            .collect();
        for s in &sends {
            direct.send(s.clone());
        }
        batched.send_batch(sends);
        assert_eq!(direct.total_stats(), batched.total_stats());
        let a = direct.drain(1, SimTime(10), None).envelopes;
        let b = batched.drain(1, SimTime(10), None).envelopes;
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sent_round, y.sent_round);
            assert_eq!(x.payload, y.payload);
        }
    }

    #[test]
    fn send_batch_drives_the_loss_model_like_direct_sends() {
        // Per-link loss sequences advance at commit time, so a buffered
        // batch committed in pop order reproduces the direct drop pattern.
        let direct = SimNetwork::lossy(2, LossModel::new(0.5, 9));
        let batched = SimNetwork::lossy(2, LossModel::new(0.5, 9));
        let mk = |k: usize| PendingSend {
            from: 0,
            to: 1,
            payload: Bytes::from(vec![k as u8]),
            breakdown: breakdown(1, 0),
            sent: SimTime::ZERO,
            arrives: SimTime::ZERO,
            sent_round: k,
        };
        for k in 0..64 {
            direct.send(mk(k));
        }
        batched.send_batch((0..64).map(mk).collect());
        let a: Vec<usize> = drain_all(&direct, 1).iter().map(|e| e.sent_round).collect();
        let b: Vec<usize> = drain_all(&batched, 1)
            .iter()
            .map(|e| e.sent_round)
            .collect();
        assert_eq!(a, b, "identical survivors under the loss model");
        assert!(direct.stats(0).messages_dropped > 0, "losses exercised");
    }

    #[test]
    fn purge_inbox_destroys_everything_and_reverses_receives() {
        let net = SimNetwork::new(2);
        bulk(&net, 0, 1, Bytes::from(vec![0u8; 4]), breakdown(4, 0));
        timed(
            &net,
            0,
            1,
            Bytes::from(vec![0u8; 6]),
            breakdown(6, 0),
            SimTime(5),
            SimTime(50),
            1,
        );
        assert_eq!(net.stats(1).bytes_received, 10);
        assert_eq!(
            net.purge(PurgeScope::Inbox { node: 1 }),
            PurgeReport {
                messages: 2,
                bytes: 10
            }
        );
        assert_eq!(net.pending(1), 0);
        let s = net.stats(1);
        assert_eq!(s.bytes_received, 0);
        assert_eq!(s.messages_dropped, 2);
        // The sender still paid for every byte.
        assert_eq!(net.stats(0).bytes_sent, 10);
    }

    #[test]
    fn purge_arrived_spares_in_flight_messages() {
        let net = SimNetwork::new(2);
        let send_arriving = |arrives: u64| {
            timed(
                &net,
                0,
                1,
                Bytes::from(vec![0u8]),
                breakdown(1, 0),
                SimTime(0),
                SimTime(arrives),
                0,
            );
        };
        send_arriving(10);
        send_arriving(20);
        send_arriving(30);
        let report = net.purge(PurgeScope::ArrivedBy {
            node: 1,
            deadline: SimTime(20),
        });
        assert_eq!(report.messages, 2);
        assert_eq!(report.bytes, 2);
        assert_eq!(net.pending(1), 1);
        assert_eq!(net.stats(1).messages_dropped, 2);
        let survivor = net.drain(1, SimTime(30), None).envelopes;
        assert_eq!(survivor.len(), 1);
        assert_eq!(survivor[0].arrives, SimTime(30));
    }

    #[test]
    fn purge_in_flight_from_kills_only_that_senders_undelivered() {
        let net = SimNetwork::new(3);
        let send = |from: usize, arrives: u64| {
            timed(
                &net,
                from,
                2,
                Bytes::from(vec![from as u8]),
                breakdown(1, 0),
                SimTime(0),
                SimTime(arrives),
                0,
            );
        };
        send(0, 5); // already delivered at cutoff: survives
        send(0, 15); // in flight from the crashing sender: killed
        send(1, 15); // in flight from a healthy sender: survives
        let report = net.purge(PurgeScope::InFlightFrom {
            from: 0,
            cutoff: SimTime(10),
        });
        assert_eq!(report.messages, 1);
        assert_eq!(net.pending(2), 2);
        assert_eq!(net.stats(2).messages_dropped, 1);
        let inbox = net.drain(2, SimTime(20), None).envelopes;
        let froms: Vec<usize> = inbox.iter().map(|e| e.from).collect();
        assert_eq!(froms, vec![0, 1]);
    }

    #[test]
    fn purge_link_kills_only_that_directed_link() {
        let net = SimNetwork::new(3);
        bulk(&net, 0, 2, Bytes::from(vec![0u8; 4]), breakdown(4, 0));
        bulk(&net, 1, 2, Bytes::from(vec![0u8; 6]), breakdown(6, 0));
        bulk(&net, 0, 1, Bytes::from(vec![0u8; 2]), breakdown(2, 0));
        assert_eq!(
            net.purge(PurgeScope::Link {
                from: 0,
                to: 2,
                sent_round: None
            }),
            PurgeReport {
                messages: 1,
                bytes: 4
            }
        );
        assert_eq!(net.pending(2), 1, "other sender's message survives");
        assert_eq!(net.pending(1), 1, "other link untouched");
        let s = net.stats(2);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.bytes_received, 6, "receive accounting reversed");
        // The sender still paid for the bytes it pushed.
        assert_eq!(net.stats(0).bytes_sent, 6);
        // An empty link is a no-op.
        assert_eq!(
            net.purge(PurgeScope::Link {
                from: 0,
                to: 2,
                sent_round: None
            }),
            PurgeReport::default()
        );
    }

    #[test]
    fn purge_link_can_filter_by_sent_round() {
        let net = SimNetwork::new(2);
        for round in [3usize, 4, 3] {
            timed(
                &net,
                0,
                1,
                Bytes::from(vec![round as u8; 2]),
                breakdown(2, 0),
                SimTime(0),
                SimTime(10),
                round,
            );
        }
        assert_eq!(
            net.purge(PurgeScope::Link {
                from: 0,
                to: 1,
                sent_round: Some(3)
            }),
            PurgeReport {
                messages: 2,
                bytes: 4
            }
        );
        let survivors = net.drain(1, SimTime(10), None).envelopes;
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].sent_round, 4, "other rounds' messages live");
    }

    #[test]
    fn bulk_send_is_immediately_drainable() {
        let net = SimNetwork::new(2);
        bulk(&net, 0, 1, Bytes::from(vec![7u8]), breakdown(1, 0));
        let inbox = net.drain(1, SimTime::ZERO, None).envelopes;
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].arrives, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "arrive before")]
    fn arrival_before_send_rejected() {
        let net = SimNetwork::new(2);
        timed(
            &net,
            0,
            1,
            Bytes::new(),
            breakdown(0, 0),
            SimTime(10),
            SimTime(5),
            0,
        );
    }

    #[test]
    fn sim_clock_is_pinned_to_zero_and_unmeasured() {
        let net = SimNetwork::new(1);
        assert_eq!(net.now(), SimTime::ZERO);
        assert!(net.measured_flight().is_none());
        assert_eq!(net.len(), 1);
        assert!(!net.is_empty());
    }
}
