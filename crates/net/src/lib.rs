//! The transport layer: one engine-facing contract, two backends.
//!
//! The paper deploys 96–384 node processes over ZeroMQ TCP sockets and
//! *instruments the experiments* to measure real bytes transferred (§IV-B-g).
//! This crate gives the engine that network through a single trait,
//! [`Transport`] — committed [`PendingSend`]s in, deadline/TTL-aware drains
//! out, one scoped purge, exact byte metering — with two implementations:
//!
//! - [`SimNetwork`]: the deterministic in-process backend on the *virtual*
//!   time axis. Nodes exchange the very same serialized payloads a socket
//!   would carry, through per-node mailboxes, and a meter records payload
//!   vs. metadata bytes per node — the two series the paper plots in
//!   Figure 4 (row 3) and Figure 9. A message travelling a slow link is
//!   simply not visible to its receiver until `latency + bytes/bandwidth`
//!   have elapsed on the virtual clock ([`Transport::drain`] with the
//!   receiver's deadline).
//! - [`ThreadChannelTransport`]: the real-concurrency backend — a
//!   [`framing`]-validated channel per directed edge, wall-clock stamps
//!   mapped onto [`jwins_sim::SimTime`], and a measured latency profile
//!   ([`MeasuredFlight`]) the cross-check harness replays through the sim
//!   oracle.
//!
//! [`TimeModel`] converts measured bytes into simulated wall-clock time
//! (compute + latency + bandwidth), preserving the *relative*
//! time-to-accuracy comparisons of Figures 5–6.

pub mod channel;
pub mod framing;
pub mod meter;
pub mod sim;
pub mod time;
pub mod transport;

pub use channel::ThreadChannelTransport;
pub use meter::{ByteBreakdown, TrafficStats};
pub use sim::{LossModel, SimNetwork};
pub use time::TimeModel;
pub use transport::{
    Drained, Envelope, MeasuredFlight, PendingSend, PurgeReport, PurgeScope, Transport,
};
