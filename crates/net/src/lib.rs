//! In-process network simulator with exact byte metering.
//!
//! The paper deploys 96–384 node processes over ZeroMQ TCP sockets and
//! *instruments the experiments* to measure real bytes transferred (§IV-B-g).
//! This crate is the single-process substitute: nodes exchange the very same
//! serialized payloads a socket would carry, through per-node mailboxes, and
//! a meter records payload vs. metadata bytes per node — the two series the
//! paper plots in Figure 4 (row 3) and Figure 9.
//!
//! [`TimeModel`] converts measured bytes into simulated wall-clock time
//! (compute + latency + bandwidth), preserving the *relative* time-to-accuracy
//! comparisons of Figures 5–6.
//!
//! For the event-driven runtime, every [`Envelope`] additionally carries
//! virtual send/arrival timestamps and mailboxes can be drained *up to a
//! deadline* ([`SimNetwork::drain_until`]): a message travelling a slow link
//! is simply not visible to its receiver until `latency + bytes/bandwidth`
//! have elapsed on the virtual clock.

pub mod meter;
pub mod time;
pub mod transport;

pub use meter::{ByteBreakdown, TrafficStats};
pub use time::TimeModel;
pub use transport::{Envelope, LossModel, PendingSend, SimNetwork};
