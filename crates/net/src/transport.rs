//! The engine↔network contract: [`Transport`].
//!
//! The training engine talks to exactly one object — a [`Transport`] — and
//! never to a concrete network type. The trait captures the engine's actual
//! needs as a small, coherent surface:
//!
//! - **committed sends**: every transmission is a fully priced
//!   [`PendingSend`] (endpoints, bytes, virtual departure/arrival stamps),
//!   handed over one at a time ([`Transport::send`]) or as an ordered batch
//!   ([`Transport::send_batch`]);
//! - **one drain** ([`Transport::drain`]): deadline-aware (messages whose
//!   `arrives` stamp is past the deadline stay queued) and TTL-aware
//!   (arrived-but-stale messages are discarded and *counted*, with the
//!   stats commit deferred to the caller via [`Transport::record_expired`]
//!   so a parallel execute phase stays deterministic);
//! - **one purge** ([`Transport::purge`]): a [`PurgeScope`] selects which
//!   messages die (a crashed node's inbox, deliveries that landed on a dead
//!   host, a dead sender's half-open transfers, a repaired-away link);
//! - **stats/tracer hooks**: per-node [`TrafficStats`] snapshots and an
//!   attachable [`jwins_trace::Tracer`] that observes sends and drops
//!   without ever affecting them.
//!
//! Two backends implement it: the deterministic in-memory
//! [`crate::SimNetwork`] (virtual time, the determinism oracle) and the
//! real-concurrency [`crate::ThreadChannelTransport`] (one OS thread per
//! node, a crossbeam channel per directed edge, wall-clock stamps mapped
//! onto [`SimTime`]).

use crate::meter::{ByteBreakdown, TrafficStats};
use bytes::Bytes;
use jwins_sim::SimTime;

/// A delivered message.
///
/// Envelopes carry virtual-time stamps so the event-driven runtime can model
/// in-flight messages: `sent` is when the sender handed the message to the
/// network, `arrives` is when the last byte lands in the receiver's mailbox
/// (`latency + bytes / bandwidth` on the sending link). The barrier-driven
/// engine leaves both at [`SimTime::ZERO`], making every message immediately
/// drainable — exactly the bulk-synchronous semantics.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub from: usize,
    /// Serialized message body.
    pub payload: Bytes,
    /// Virtual send time.
    pub sent: SimTime,
    /// Virtual arrival time; until then the message is invisible to
    /// [`Transport::drain`].
    pub arrives: SimTime,
    /// The sender's local round when it sent this message (staleness
    /// accounting in asynchronous gossip; 0 in barrier mode).
    pub sent_round: usize,
}

impl Envelope {
    /// The message's age at `now`: virtual time since the sender handed it
    /// to the network (saturating at zero for barrier-mode stamps).
    pub fn age_at(&self, now: SimTime) -> SimTime {
        now.since(self.sent)
    }

    /// The message's age in rounds when mixed at `round` (saturating: a
    /// message from a *future* local round has age zero).
    pub fn age_rounds(&self, round: usize) -> usize {
        round.saturating_sub(self.sent_round)
    }
}

/// A fully priced send whose network side effects have not happened yet.
///
/// The event-driven engine's parallel execute phase computes everything
/// about a transmission (recipient, bytes, virtual departure and arrival)
/// without touching shared state, then hands the batch to
/// [`Transport::send_batch`] in the event queue's deterministic order — so
/// mailbox append order, loss-model link sequences and traffic counters
/// replay exactly as if the events had run one at a time.
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Serialized message body.
    pub payload: Bytes,
    /// Payload/metadata byte accounting.
    pub breakdown: ByteBreakdown,
    /// Virtual send time.
    pub sent: SimTime,
    /// Virtual arrival time of the last byte.
    pub arrives: SimTime,
    /// The sender's local round (staleness accounting).
    pub sent_round: usize,
}

impl PendingSend {
    /// A barrier-mode send: both stamps at [`SimTime::ZERO`] and round 0,
    /// i.e. immediately drainable — the bulk-synchronous semantics.
    pub fn bulk(from: usize, to: usize, payload: Bytes, breakdown: ByteBreakdown) -> Self {
        Self {
            from,
            to,
            payload,
            breakdown,
            sent: SimTime::ZERO,
            arrives: SimTime::ZERO,
            sent_round: 0,
        }
    }
}

/// The result of one [`Transport::drain`]: the messages that arrived in
/// time, plus how many arrived messages the TTL discarded.
///
/// The expiry count is *returned*, not yet recorded in the receiver's
/// [`TrafficStats`], so a parallel execute phase can drain disjoint
/// mailboxes concurrently and commit the counter updates later in
/// deterministic order (via [`Transport::record_expired`]) — or not at all,
/// when the run stops before the event's turn to commit.
#[derive(Debug, Default)]
pub struct Drained {
    /// Arrived, unexpired messages ordered by arrival time (ties keep the
    /// transport's delivery order).
    pub envelopes: Vec<Envelope>,
    /// Arrived messages the TTL discarded (accounting deferred).
    pub expired: u64,
}

/// Which messages a [`Transport::purge`] destroys.
///
/// Every scope reverses the victims' receive accounting via
/// [`TrafficStats::record_kill`]; the sender keeps paying for the bytes it
/// pushed (they were on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurgeScope {
    /// Everything queued for `node` — arrived or in flight — as when the
    /// node crashes and all its connections die.
    Inbox {
        /// The crashed receiver.
        node: usize,
    },
    /// Messages for `node` whose delivery completed by `deadline` — they
    /// landed on a dead host (issued when the node recovers, with the
    /// recovery time). Messages still in flight at `deadline` survive: the
    /// tail of the transfer lands on the recovered host.
    ArrivedBy {
        /// The recovering receiver.
        node: usize,
        /// The recovery time.
        deadline: SimTime,
    },
    /// `from`'s messages still in flight at `cutoff` (delivery not yet
    /// complete) — a crashed sender's half-open transfers. Messages whose
    /// last byte already landed are past saving by the sender's death and
    /// survive.
    InFlightFrom {
        /// The crashed sender.
        from: usize,
        /// The crash time.
        cutoff: SimTime,
    },
    /// Messages queued from `from` to `to` — arrived or in flight — as when
    /// a topology-repair step tears the connection down (the edge was
    /// removed, so its deliveries will never be mixed). With
    /// `sent_round = Some(r)` only messages the sender stamped with round
    /// `r` die (repair re-wires per round; other rounds may still carry the
    /// edge); `None` clears the whole directed link.
    Link {
        /// The edge's sending endpoint.
        from: usize,
        /// The edge's receiving endpoint.
        to: usize,
        /// Restrict the kill to one sender round (`None` = whole link).
        sent_round: Option<usize>,
    },
}

/// What a [`Transport::purge`] destroyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PurgeReport {
    /// Messages destroyed.
    pub messages: u64,
    /// Wire bytes destroyed with them.
    pub bytes: u64,
}

/// Wall-clock delivery latency observed by a real backend, aggregated over
/// every message it moved — the measured profile the cross-check harness
/// replays through the sim oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredFlight {
    /// Mean send→deliver latency in seconds.
    pub mean_latency_s: f64,
    /// Messages the mean was taken over.
    pub messages: u64,
}

/// A network between `n` nodes, as the training engine sees one.
///
/// # Contract
///
/// - **Delivery**: a [`PendingSend`] accepted by [`Transport::send`] is
///   either delivered to `to`'s mailbox or dropped by an explicit mechanism
///   (loss model, purge) that shows up in [`TrafficStats`]. Per directed
///   edge, delivery preserves send order for equal `arrives` stamps.
/// - **Metering**: the sender is charged at send time
///   ([`TrafficStats::record_send`]); the receiver is credited when the
///   message is bound for its mailbox ([`TrafficStats::record_receive`]),
///   and purges reverse that credit ([`TrafficStats::record_kill`]).
/// - **Drain**: one call serves every engine mode. The barrier engine
///   passes `deadline = SimTime::MAX, ttl = None` ("everything ever
///   sent"); the event-driven engine passes the node's local virtual clock
///   and the staleness TTL. A `SimTime::MAX` deadline measures TTL ages at
///   the transport's [`Transport::now`] instead (the only meaningful "now"
///   when no deadline was given).
/// - **Tracing** is strictly observational: a transport with a tracer
///   attached behaves bit-identically to one without.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Whether the network has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attaches a tracer: every send (and drop) from now on emits a
    /// [`jwins_trace::TraceEvent`]. Called once at build time, before the
    /// transport is shared.
    fn set_tracer(&mut self, tracer: std::sync::Arc<jwins_trace::Tracer>);

    /// Executes one committed send.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `arrives < sent`.
    fn send(&self, send: PendingSend);

    /// Executes a batch of committed sends in order — equivalent to calling
    /// [`Transport::send`] once per element, in sequence. The caller (the
    /// engine's commit phase) is responsible for ordering the batch
    /// deterministically; implementations add no reordering of their own.
    ///
    /// # Panics
    ///
    /// Panics under the [`Transport::send`] contract.
    fn send_batch(&self, sends: Vec<PendingSend>) {
        for s in sends {
            self.send(s);
        }
    }

    /// Drains `node`'s messages that have *arrived* by `deadline`
    /// (`arrives <= deadline`), ordered by arrival time (ties keep delivery
    /// order). Later-arriving messages stay queued for a future drain.
    /// With a TTL, arrived messages older than `ttl` at the deadline are
    /// discarded and counted in [`Drained::expired`] — returned, not yet
    /// recorded (see [`Transport::record_expired`]).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn drain(&self, node: usize, deadline: SimTime, ttl: Option<SimTime>) -> Drained;

    /// Records `count` expiries in `node`'s stats — the commit-phase
    /// counterpart of [`Drained::expired`], also used for over-cap
    /// staleness drops decided by the mix loop (round-based caps the
    /// transport cannot see). A zero count is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn record_expired(&self, node: usize, count: u64);

    /// Destroys the messages selected by `scope` and reverses their receive
    /// accounting. See [`PurgeScope`] for the exact semantics of each
    /// variant.
    ///
    /// # Panics
    ///
    /// Panics if a scope endpoint is out of range.
    fn purge(&self, scope: PurgeScope) -> PurgeReport;

    /// Number of messages still queued (arrived or in flight) for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn pending(&self, node: usize) -> usize;

    /// Snapshot of a node's traffic counters.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn stats(&self, node: usize) -> TrafficStats;

    /// Cluster-wide traffic totals.
    fn total_stats(&self) -> TrafficStats;

    /// The transport's own clock, mapped onto the virtual axis. The sim
    /// backend has no clock of its own (the engine drives virtual time) and
    /// always answers [`SimTime::ZERO`]; a real backend answers wall-clock
    /// time since construction.
    fn now(&self) -> SimTime;

    /// The delivery-latency profile a real backend measured, if any — the
    /// sim oracle's replay input. The sim backend answers `None` (its
    /// latencies are *declared*, not measured).
    fn measured_flight(&self) -> Option<MeasuredFlight> {
        None
    }
}

/// Shared drain core: partitions a mailbox at `deadline`, applies the TTL
/// against `age_ref`, stable-sorts survivors by arrival. Both backends
/// funnel through this so their deadline/TTL semantics cannot drift apart.
pub(crate) fn drain_mailbox(
    mailbox: &mut Vec<Envelope>,
    deadline: SimTime,
    age_ref: SimTime,
    ttl: Option<SimTime>,
) -> Drained {
    let mut expired = 0u64;
    let mut arrived = Vec::new();
    let mut pending = Vec::with_capacity(mailbox.len());
    for env in mailbox.drain(..) {
        if env.arrives <= deadline {
            if ttl.is_some_and(|t| env.age_at(age_ref) > t) {
                expired += 1;
            } else {
                arrived.push(env);
            }
        } else {
            pending.push(env);
        }
    }
    *mailbox = pending;
    arrived.sort_by_key(|e| e.arrives); // stable: equal arrivals keep push order
    Drained {
        envelopes: arrived,
        expired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_age_helpers() {
        let env = Envelope {
            from: 0,
            payload: Bytes::new(),
            sent: SimTime::from_secs_f64(2.0),
            arrives: SimTime::from_secs_f64(3.0),
            sent_round: 4,
        };
        assert_eq!(env.age_at(SimTime::from_secs_f64(5.0)).as_secs_f64(), 3.0);
        assert_eq!(env.age_at(SimTime::from_secs_f64(1.0)), SimTime::ZERO);
        assert_eq!(env.age_rounds(7), 3);
        assert_eq!(env.age_rounds(2), 0, "future rounds saturate to fresh");
    }

    #[test]
    fn bulk_sends_are_zero_stamped() {
        let s = PendingSend::bulk(
            1,
            2,
            Bytes::from(vec![9u8]),
            ByteBreakdown {
                payload: 1,
                metadata: 0,
            },
        );
        assert_eq!((s.from, s.to, s.sent_round), (1, 2, 0));
        assert_eq!(s.sent, SimTime::ZERO);
        assert_eq!(s.arrives, SimTime::ZERO);
    }
}
