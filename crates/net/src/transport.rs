//! Mailbox-based message transport.
//!
//! A [`SimNetwork`] connects `n` nodes. Senders enqueue [`Envelope`]s into
//! the receiver's mailbox; receivers drain their mailbox once per round (the
//! training engine is bulk-synchronous, like the paper's round structure).
//! Payloads are reference-counted [`bytes::Bytes`], so broadcasting one
//! message to `d` neighbours costs one allocation while still being counted
//! `d` times by the meter — exactly like a TCP fan-out.

use crate::meter::{ByteBreakdown, TrafficStats};
use bytes::Bytes;
use jwins_sim::SimTime;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Independent per-message loss on every directed link, deterministic in
/// `(seed, from, to, per-link sequence number)`.
///
/// Dropped messages are still metered as sent (the sender paid for the
/// bytes) but never reach the receiver's mailbox; the drop is counted in
/// [`TrafficStats::messages_dropped`]. Node-level churn is a different
/// failure mode — see the engine's participation models.
///
/// # Example
///
/// ```
/// use jwins_net::{LossModel, SimNetwork};
/// use jwins_net::ByteBreakdown;
/// use bytes::Bytes;
///
/// let net = SimNetwork::lossy(2, LossModel::new(0.5, 7));
/// for _ in 0..100 {
///     net.send(0, 1, Bytes::from(vec![0u8]), ByteBreakdown { payload: 1, metadata: 0 });
/// }
/// let delivered = net.drain(1).len() as u64;
/// assert_eq!(delivered + net.stats(0).messages_dropped, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    probability: f64,
    seed: u64,
}

impl LossModel {
    /// Creates a loss model dropping each message with `probability`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= probability < 1`.
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "loss probability must be in [0, 1)"
        );
        Self { probability, seed }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    fn drops(&self, from: usize, to: usize, sequence: u64) -> bool {
        // SplitMix64 over (seed, from, to, sequence).
        let mut z = self
            .seed
            .wrapping_add((from as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((to as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((sequence + 1).wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = (z ^ (z >> 31)) as f64 / u64::MAX as f64;
        u < self.probability
    }
}

/// A delivered message.
///
/// Envelopes carry virtual-time stamps so the event-driven runtime can model
/// in-flight messages: `sent` is when the sender handed the message to the
/// network, `arrives` is when the last byte lands in the receiver's mailbox
/// (`latency + bytes / bandwidth` on the sending link). The barrier-driven
/// engine leaves both at [`SimTime::ZERO`], making every message immediately
/// drainable — exactly the old semantics.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub from: usize,
    /// Serialized message body.
    pub payload: Bytes,
    /// Virtual send time.
    pub sent: SimTime,
    /// Virtual arrival time; until then the message is invisible to
    /// [`SimNetwork::drain_until`].
    pub arrives: SimTime,
    /// The sender's local round when it sent this message (staleness
    /// accounting in asynchronous gossip; 0 in barrier mode).
    pub sent_round: usize,
}

impl Envelope {
    /// The message's age at `now`: virtual time since the sender handed it
    /// to the network (saturating at zero for barrier-mode stamps).
    pub fn age_at(&self, now: SimTime) -> SimTime {
        now.since(self.sent)
    }

    /// The message's age in rounds when mixed at `round` (saturating: a
    /// message from a *future* local round has age zero).
    pub fn age_rounds(&self, round: usize) -> usize {
        round.saturating_sub(self.sent_round)
    }
}

/// A fully priced send whose network side effects have not happened yet.
///
/// The event-driven engine's parallel execute phase computes everything
/// about a transmission (recipient, bytes, virtual departure and arrival)
/// without touching shared state, then hands the batch to
/// [`SimNetwork::commit_sends`] in the event queue's deterministic order —
/// so mailbox append order, loss-model link sequences and traffic counters
/// replay exactly as if the events had run one at a time.
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Serialized message body.
    pub payload: Bytes,
    /// Payload/metadata byte accounting.
    pub breakdown: ByteBreakdown,
    /// Virtual send time.
    pub sent: SimTime,
    /// Virtual arrival time of the last byte.
    pub arrives: SimTime,
    /// The sender's local round (staleness accounting).
    pub sent_round: usize,
}

/// An in-process network between `n` nodes.
#[derive(Debug)]
pub struct SimNetwork {
    mailboxes: Vec<Mutex<Vec<Envelope>>>,
    stats: Vec<Mutex<TrafficStats>>,
    loss: Option<LossModel>,
    /// Per-directed-link sequence numbers driving the loss hash.
    sequences: Mutex<HashMap<(usize, usize), u64>>,
    /// Telemetry for the transport's sequential decision points (send and
    /// loss-model drop). Purges and expiries are reported by the engine,
    /// which knows the virtual time and event context — never from the
    /// parallel execute phase (see the `jwins_trace` determinism contract).
    tracer: Option<std::sync::Arc<jwins_trace::Tracer>>,
}

impl SimNetwork {
    /// Creates a reliable network with `n` empty mailboxes.
    pub fn new(n: usize) -> Self {
        Self {
            mailboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            stats: (0..n)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            loss: None,
            sequences: Mutex::new(HashMap::new()),
            tracer: None,
        }
    }

    /// Attaches a tracer: every send (and loss-model drop) from now on
    /// emits a [`jwins_trace::TraceEvent`]. Recording is strictly
    /// observational — counters, mailboxes and loss sequences are
    /// bit-identical with or without it.
    pub fn set_tracer(&mut self, tracer: std::sync::Arc<jwins_trace::Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Creates a lossy network: each message independently dropped per
    /// [`LossModel`]. Determinism holds per directed link regardless of the
    /// interleaving of sends on other links.
    pub fn lossy(n: usize, loss: LossModel) -> Self {
        Self {
            loss: Some(loss),
            ..Self::new(n)
        }
    }

    /// The loss model in effect, if any.
    pub fn loss_model(&self) -> Option<LossModel> {
        self.loss
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.mailboxes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.mailboxes.is_empty()
    }

    /// Sends `payload` from `from` to `to`, metering `breakdown` bytes.
    /// The message is stamped at time zero, i.e. immediately drainable —
    /// the bulk-synchronous transport semantics.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn send(&self, from: usize, to: usize, payload: Bytes, breakdown: ByteBreakdown) {
        self.send_timed(
            from,
            to,
            payload,
            breakdown,
            SimTime::ZERO,
            SimTime::ZERO,
            0,
        );
    }

    /// Sends `payload` with explicit virtual timestamps: handed to the
    /// network at `sent`, landing in the receiver's mailbox at `arrives`.
    /// `sent_round` is the sender's local round (staleness accounting).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `arrives < sent`.
    #[allow(clippy::too_many_arguments)]
    pub fn send_timed(
        &self,
        from: usize,
        to: usize,
        payload: Bytes,
        breakdown: ByteBreakdown,
        sent: SimTime,
        arrives: SimTime,
        sent_round: usize,
    ) {
        assert!(
            from < self.len() && to < self.len(),
            "endpoint out of range"
        );
        assert!(arrives >= sent, "message cannot arrive before it was sent");
        debug_assert_eq!(
            breakdown.total(),
            payload.len(),
            "breakdown must account for every byte"
        );
        self.stats[from].lock().record_send(breakdown);
        if let Some(loss) = &self.loss {
            let sequence = {
                let mut sequences = self.sequences.lock();
                let counter = sequences.entry((from, to)).or_insert(0);
                let current = *counter;
                *counter += 1;
                current
            };
            if loss.drops(from, to, sequence) {
                self.stats[from].lock().record_drop();
                if let Some(tracer) = &self.tracer {
                    tracer.emit(jwins_trace::TraceEvent::MsgDrop {
                        t_ns: sent.0,
                        from: from as u32,
                        to: to as u32,
                        round: sent_round as u32,
                        bytes: payload.len() as u64,
                    });
                }
                return;
            }
        }
        if let Some(tracer) = &self.tracer {
            tracer.emit(jwins_trace::TraceEvent::MsgSend {
                t_ns: sent.0,
                from: from as u32,
                to: to as u32,
                round: sent_round as u32,
                bytes: payload.len() as u64,
                arrives_ns: arrives.0,
            });
        }
        self.stats[to].lock().record_receive(payload.len());
        self.mailboxes[to].lock().push(Envelope {
            from,
            payload,
            sent,
            arrives,
            sent_round,
        });
    }

    /// Applies buffered sends in order — equivalent to calling
    /// [`Self::send_timed`] once per element, in sequence. The caller (the
    /// engine's commit phase) is responsible for ordering the batch
    /// deterministically; this method adds no reordering of its own.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or a send arrives before it
    /// was sent (the [`Self::send_timed`] contract).
    pub fn commit_sends(&self, sends: impl IntoIterator<Item = PendingSend>) {
        for s in sends {
            self.send_timed(
                s.from,
                s.to,
                s.payload,
                s.breakdown,
                s.sent,
                s.arrives,
                s.sent_round,
            );
        }
    }

    /// Broadcasts `payload` from `from` to every node in `to`.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn broadcast(&self, from: usize, to: &[usize], payload: Bytes, breakdown: ByteBreakdown) {
        for &t in to {
            self.send(from, t, payload.clone(), breakdown);
        }
    }

    /// Drains and returns the mailbox of `node` (delivery order preserved),
    /// ignoring arrival timestamps — the barrier-mode drain.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn drain(&self, node: usize) -> Vec<Envelope> {
        std::mem::take(&mut *self.mailboxes[node].lock())
    }

    /// Drains only the messages that have *arrived* by `deadline`
    /// (`arrives <= deadline`), ordered by arrival time (ties keep delivery
    /// order). Later-arriving messages stay queued for a future drain — the
    /// event-driven runtime calls this with a node's local clock, so a slow
    /// link's message is simply not there yet.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn drain_until(&self, node: usize, deadline: SimTime) -> Vec<Envelope> {
        self.drain_until_expiring(node, deadline, None)
    }

    /// [`Self::drain_until`] with a message TTL: arrived messages whose age
    /// at `deadline` exceeds `ttl` are discarded instead of returned,
    /// counted in the receiver's [`TrafficStats::messages_expired`]. A
    /// `None` TTL behaves exactly like [`Self::drain_until`]. Messages still
    /// in flight stay queued and are TTL-checked when they are drained.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn drain_until_expiring(
        &self,
        node: usize,
        deadline: SimTime,
        ttl: Option<SimTime>,
    ) -> Vec<Envelope> {
        let (arrived, expired) = self.drain_until_deferred(node, deadline, ttl);
        self.record_expired_many(node, expired);
        arrived
    }

    /// [`Self::drain_until_expiring`] with the expiry *accounting* deferred:
    /// expired envelopes are discarded from the mailbox as usual, but their
    /// count is returned instead of recorded, so a parallel execute phase
    /// can drain disjoint mailboxes concurrently and commit the counter
    /// updates later in deterministic order (via
    /// [`Self::record_expired_many`]) — or not at all, when the run stops
    /// before the event's turn to commit.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn drain_until_deferred(
        &self,
        node: usize,
        deadline: SimTime,
        ttl: Option<SimTime>,
    ) -> (Vec<Envelope>, u64) {
        let mut expired = 0u64;
        let mut mailbox = self.mailboxes[node].lock();
        let mut arrived = Vec::new();
        let mut pending = Vec::with_capacity(mailbox.len());
        for env in mailbox.drain(..) {
            if env.arrives <= deadline {
                if ttl.is_some_and(|t| env.age_at(deadline) > t) {
                    expired += 1;
                } else {
                    arrived.push(env);
                }
            } else {
                pending.push(env);
            }
        }
        *mailbox = pending;
        drop(mailbox);
        arrived.sort_by_key(|e| e.arrives); // stable: equal arrivals keep push order
        (arrived, expired)
    }

    /// Records an over-cap staleness drop decided by the caller (the mix
    /// loop applies round-based caps the transport cannot see).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record_expired(&self, node: usize) {
        self.stats[node].lock().record_expired();
    }

    /// Records `count` expiries at once — the commit-phase counterpart of
    /// [`Self::drain_until_deferred`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record_expired_many(&self, node: usize, count: u64) {
        if count == 0 {
            return;
        }
        let mut stats = self.stats[node].lock();
        for _ in 0..count {
            stats.record_expired();
        }
    }

    /// Destroys every message queued for `node` — arrived or in flight —
    /// as when the node crashes and all its connections die. Returns the
    /// number of messages destroyed; their receive accounting is reversed
    /// via [`TrafficStats::record_kill`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn purge_inbox(&self, node: usize) -> u64 {
        let envelopes = { std::mem::take(&mut *self.mailboxes[node].lock()) };
        let mut stats = self.stats[node].lock();
        for env in &envelopes {
            stats.record_kill(env.payload.len());
        }
        envelopes.len() as u64
    }

    /// Destroys messages for `node` whose delivery completed by `deadline`
    /// — they landed on a dead host (called when the node recovers, with
    /// the recovery time). Messages still in flight at `deadline` survive:
    /// the tail of the transfer lands on the recovered host. Returns the
    /// number destroyed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn purge_arrived(&self, node: usize, deadline: SimTime) -> u64 {
        let mut killed = 0u64;
        let mut killed_bytes: Vec<usize> = Vec::new();
        {
            let mut mailbox = self.mailboxes[node].lock();
            mailbox.retain(|env| {
                if env.arrives <= deadline {
                    killed += 1;
                    killed_bytes.push(env.payload.len());
                    false
                } else {
                    true
                }
            });
        }
        let mut stats = self.stats[node].lock();
        for bytes in killed_bytes {
            stats.record_kill(bytes);
        }
        killed
    }

    /// Destroys `from`'s messages still in flight at `cutoff` (delivery not
    /// yet complete) — a crashed sender's half-open transfers. Messages
    /// whose last byte already landed are past saving by the sender's death
    /// and survive. Returns the number destroyed.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn purge_in_flight_from(&self, from: usize, cutoff: SimTime) -> u64 {
        assert!(from < self.len(), "endpoint out of range");
        let mut killed = 0u64;
        for (to, mailbox) in self.mailboxes.iter().enumerate() {
            let mut killed_bytes: Vec<usize> = Vec::new();
            {
                let mut mailbox = mailbox.lock();
                mailbox.retain(|env| {
                    if env.from == from && env.arrives > cutoff {
                        killed_bytes.push(env.payload.len());
                        false
                    } else {
                        true
                    }
                });
            }
            if !killed_bytes.is_empty() {
                let mut stats = self.stats[to].lock();
                killed += killed_bytes.len() as u64;
                for bytes in killed_bytes {
                    stats.record_kill(bytes);
                }
            }
        }
        killed
    }

    /// Destroys messages queued from `from` to `to` — arrived or in flight
    /// — as when a topology-repair step tears the connection down (the edge
    /// was removed, so its deliveries will never be mixed). With
    /// `sent_round = Some(r)` only messages the sender stamped with round
    /// `r` die (repair re-wires per round; other rounds may still carry the
    /// edge); `None` clears the whole directed link. Receive accounting is
    /// reversed via [`TrafficStats::record_kill`], exactly like the crash
    /// purges. Returns `(messages, bytes)` destroyed.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn purge_link(&self, from: usize, to: usize, sent_round: Option<usize>) -> (u64, u64) {
        assert!(
            from < self.len() && to < self.len(),
            "endpoint out of range"
        );
        let mut killed_bytes: Vec<usize> = Vec::new();
        {
            let mut mailbox = self.mailboxes[to].lock();
            mailbox.retain(|env| {
                if env.from == from && sent_round.is_none_or(|r| env.sent_round == r) {
                    killed_bytes.push(env.payload.len());
                    false
                } else {
                    true
                }
            });
        }
        if killed_bytes.is_empty() {
            return (0, 0);
        }
        let mut stats = self.stats[to].lock();
        let mut bytes = 0u64;
        for b in &killed_bytes {
            stats.record_kill(*b);
            bytes += *b as u64;
        }
        (killed_bytes.len() as u64, bytes)
    }

    /// Number of messages still queued (arrived or in flight) for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn pending(&self, node: usize) -> usize {
        self.mailboxes[node].lock().len()
    }

    /// Snapshot of a node's traffic counters.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn stats(&self, node: usize) -> TrafficStats {
        *self.stats[node].lock()
    }

    /// Cluster-wide traffic totals.
    pub fn total_stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for s in &self.stats {
            total.merge(&s.lock());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(payload: usize, metadata: usize) -> ByteBreakdown {
        ByteBreakdown { payload, metadata }
    }

    #[test]
    fn send_and_drain() {
        let net = SimNetwork::new(3);
        net.send(0, 1, Bytes::from(vec![1u8, 2, 3]), breakdown(2, 1));
        net.send(2, 1, Bytes::from(vec![4u8]), breakdown(1, 0));
        let inbox = net.drain(1);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].from, 0);
        assert_eq!(&inbox[0].payload[..], &[1, 2, 3]);
        assert_eq!(inbox[1].from, 2);
        // Drained mailboxes are empty.
        assert!(net.drain(1).is_empty());
    }

    #[test]
    fn metering_matches_messages() {
        let net = SimNetwork::new(2);
        net.send(0, 1, Bytes::from(vec![0u8; 10]), breakdown(8, 2));
        net.send(0, 1, Bytes::from(vec![0u8; 6]), breakdown(6, 0));
        let s0 = net.stats(0);
        assert_eq!(s0.bytes_sent, 16);
        assert_eq!(s0.payload_sent, 14);
        assert_eq!(s0.metadata_sent, 2);
        assert_eq!(s0.messages_sent, 2);
        assert_eq!(net.stats(1).bytes_received, 16);
        assert_eq!(net.total_stats().bytes_sent, 16);
    }

    #[test]
    fn broadcast_meters_per_receiver() {
        let net = SimNetwork::new(4);
        net.broadcast(0, &[1, 2, 3], Bytes::from(vec![0u8; 5]), breakdown(5, 0));
        assert_eq!(net.stats(0).bytes_sent, 15, "fan-out counts per link");
        assert_eq!(net.stats(0).messages_sent, 3);
        for node in 1..4 {
            assert_eq!(net.drain(node).len(), 1);
        }
    }

    #[test]
    fn concurrent_sends_are_safe() {
        let net = std::sync::Arc::new(SimNetwork::new(2));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let net = net.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        net.send(0, 1, Bytes::from(vec![0u8; 3]), breakdown(3, 0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(net.stats(0).messages_sent, 800);
        assert_eq!(net.drain(1).len(), 800);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn invalid_endpoint_panics() {
        SimNetwork::new(1).send(0, 1, Bytes::new(), breakdown(0, 0));
    }

    #[test]
    fn lossy_network_drops_at_configured_rate() {
        let net = SimNetwork::lossy(2, LossModel::new(0.25, 7));
        for _ in 0..2000 {
            net.send(0, 1, Bytes::from(vec![1u8]), breakdown(1, 0));
        }
        let delivered = net.drain(1).len();
        let dropped = net.stats(0).messages_dropped;
        assert_eq!(delivered as u64 + dropped, 2000);
        let rate = dropped as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.03, "drop rate {rate}");
        // Sender still pays for every byte; receiver sees only delivered.
        assert_eq!(net.stats(0).bytes_sent, 2000);
        assert_eq!(net.stats(1).bytes_received, delivered as u64);
    }

    #[test]
    fn loss_pattern_is_deterministic_per_link() {
        let run = || {
            let net = SimNetwork::lossy(3, LossModel::new(0.5, 3));
            for _ in 0..32 {
                net.send(0, 1, Bytes::from(vec![0u8]), breakdown(1, 0));
            }
            net.drain(1).len()
        };
        assert_eq!(run(), run());
        // Interleaving traffic on another link must not disturb link (0,1).
        let net = SimNetwork::lossy(3, LossModel::new(0.5, 3));
        for _ in 0..32 {
            net.send(2, 1, Bytes::from(vec![9u8]), breakdown(1, 0));
            net.send(0, 1, Bytes::from(vec![0u8]), breakdown(1, 0));
        }
        let from_zero = net.drain(1).iter().filter(|e| e.from == 0).count();
        assert_eq!(from_zero, run());
    }

    #[test]
    fn zero_loss_delivers_everything() {
        let net = SimNetwork::lossy(2, LossModel::new(0.0, 1));
        for _ in 0..50 {
            net.send(0, 1, Bytes::from(vec![0u8]), breakdown(1, 0));
        }
        assert_eq!(net.drain(1).len(), 50);
        assert_eq!(net.stats(0).messages_dropped, 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn full_loss_rejected() {
        let _ = LossModel::new(1.0, 0);
    }

    #[test]
    fn drain_until_respects_arrival_times() {
        let net = SimNetwork::new(2);
        let send_at = |sent: u64, arrives: u64, round: usize| {
            net.send_timed(
                0,
                1,
                Bytes::from(vec![round as u8]),
                breakdown(1, 0),
                SimTime(sent),
                SimTime(arrives),
                round,
            );
        };
        send_at(0, 50, 0); // slow link: pushed first, arrives last
        send_at(10, 20, 1);
        send_at(10, 10, 2);
        // Nothing has arrived before t=10.
        assert!(net.drain_until(1, SimTime(9)).is_empty());
        assert_eq!(net.pending(1), 3);
        // By t=30 two messages are in, ordered by arrival, not by push.
        let first = net.drain_until(1, SimTime(30));
        assert_eq!(
            first.iter().map(|e| e.sent_round).collect::<Vec<_>>(),
            vec![2, 1]
        );
        // The slow message is still in flight, then lands.
        assert_eq!(net.pending(1), 1);
        let late = net.drain_until(1, SimTime(50));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].sent_round, 0);
        assert_eq!(late[0].sent, SimTime(0));
        assert_eq!(late[0].arrives, SimTime(50));
        assert_eq!(net.pending(1), 0);
    }

    #[test]
    fn ttl_expires_old_messages_at_drain() {
        let net = SimNetwork::new(2);
        let send_at = |sent: f64, arrives: f64| {
            net.send_timed(
                0,
                1,
                Bytes::from(vec![1u8]),
                breakdown(1, 0),
                SimTime::from_secs_f64(sent),
                SimTime::from_secs_f64(arrives),
                0,
            );
        };
        send_at(0.0, 1.0); // age 10 s at drain: expired
        send_at(8.0, 9.0); // age 2 s at drain: fresh
        send_at(0.0, 20.0); // still in flight: untouched
        let ttl = Some(SimTime::from_secs_f64(5.0));
        let inbox = net.drain_until_expiring(1, SimTime::from_secs_f64(10.0), ttl);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].sent, SimTime::from_secs_f64(8.0));
        assert_eq!(net.stats(1).messages_expired, 1);
        assert_eq!(net.stats(1).messages_dropped, 0, "distinct from drops");
        assert_eq!(net.pending(1), 1, "in-flight message still queued");
        // The expired bytes did arrive at the host.
        assert_eq!(net.stats(1).bytes_received, 3);
        // No TTL behaves exactly like drain_until.
        let late = net.drain_until_expiring(1, SimTime::from_secs_f64(30.0), None);
        assert_eq!(late.len(), 1);
    }

    #[test]
    fn commit_sends_replays_send_timed_in_order() {
        let direct = SimNetwork::new(2);
        let buffered = SimNetwork::new(2);
        let sends: Vec<PendingSend> = (0..4)
            .map(|k| PendingSend {
                from: 0,
                to: 1,
                payload: Bytes::from(vec![k as u8; k + 1]),
                breakdown: breakdown(k + 1, 0),
                sent: SimTime(k as u64),
                arrives: SimTime(10), // equal arrivals: push order must hold
                sent_round: k,
            })
            .collect();
        for s in &sends {
            direct.send_timed(
                s.from,
                s.to,
                s.payload.clone(),
                s.breakdown,
                s.sent,
                s.arrives,
                s.sent_round,
            );
        }
        buffered.commit_sends(sends);
        assert_eq!(direct.total_stats(), buffered.total_stats());
        let a = direct.drain_until(1, SimTime(10));
        let b = buffered.drain_until(1, SimTime(10));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sent_round, y.sent_round);
            assert_eq!(x.payload, y.payload);
        }
    }

    #[test]
    fn commit_sends_drives_the_loss_model_like_direct_sends() {
        // Per-link loss sequences advance at commit time, so a buffered
        // batch committed in pop order reproduces the direct drop pattern.
        let direct = SimNetwork::lossy(2, LossModel::new(0.5, 9));
        let buffered = SimNetwork::lossy(2, LossModel::new(0.5, 9));
        let mk = |k: usize| PendingSend {
            from: 0,
            to: 1,
            payload: Bytes::from(vec![k as u8]),
            breakdown: breakdown(1, 0),
            sent: SimTime::ZERO,
            arrives: SimTime::ZERO,
            sent_round: k,
        };
        for k in 0..64 {
            let s = mk(k);
            direct.send_timed(
                s.from,
                s.to,
                s.payload.clone(),
                s.breakdown,
                s.sent,
                s.arrives,
                s.sent_round,
            );
        }
        buffered.commit_sends((0..64).map(mk));
        let a: Vec<usize> = direct.drain(1).iter().map(|e| e.sent_round).collect();
        let b: Vec<usize> = buffered.drain(1).iter().map(|e| e.sent_round).collect();
        assert_eq!(a, b, "identical survivors under the loss model");
        assert!(direct.stats(0).messages_dropped > 0, "losses exercised");
    }

    #[test]
    fn deferred_drain_counts_but_does_not_record_expiries() {
        let net = SimNetwork::new(2);
        let send_at = |sent: f64, arrives: f64| {
            net.send_timed(
                0,
                1,
                Bytes::from(vec![1u8]),
                breakdown(1, 0),
                SimTime::from_secs_f64(sent),
                SimTime::from_secs_f64(arrives),
                0,
            );
        };
        send_at(0.0, 1.0); // age 10 s at drain: expired
        send_at(8.0, 9.0); // fresh
        let ttl = Some(SimTime::from_secs_f64(5.0));
        let (inbox, expired) = net.drain_until_deferred(1, SimTime::from_secs_f64(10.0), ttl);
        assert_eq!(inbox.len(), 1);
        assert_eq!(expired, 1);
        assert_eq!(
            net.stats(1).messages_expired,
            0,
            "accounting deferred to the caller's commit phase"
        );
        net.record_expired_many(1, expired);
        assert_eq!(net.stats(1).messages_expired, 1);
        net.record_expired_many(1, 0); // no-op
        assert_eq!(net.stats(1).messages_expired, 1);
    }

    #[test]
    fn envelope_age_helpers() {
        let env = Envelope {
            from: 0,
            payload: Bytes::new(),
            sent: SimTime::from_secs_f64(2.0),
            arrives: SimTime::from_secs_f64(3.0),
            sent_round: 4,
        };
        assert_eq!(env.age_at(SimTime::from_secs_f64(5.0)).as_secs_f64(), 3.0);
        assert_eq!(env.age_at(SimTime::from_secs_f64(1.0)), SimTime::ZERO);
        assert_eq!(env.age_rounds(7), 3);
        assert_eq!(env.age_rounds(2), 0, "future rounds saturate to fresh");
    }

    #[test]
    fn purge_inbox_destroys_everything_and_reverses_receives() {
        let net = SimNetwork::new(2);
        net.send(0, 1, Bytes::from(vec![0u8; 4]), breakdown(4, 0));
        net.send_timed(
            0,
            1,
            Bytes::from(vec![0u8; 6]),
            breakdown(6, 0),
            SimTime(5),
            SimTime(50),
            1,
        );
        assert_eq!(net.stats(1).bytes_received, 10);
        assert_eq!(net.purge_inbox(1), 2);
        assert_eq!(net.pending(1), 0);
        let s = net.stats(1);
        assert_eq!(s.bytes_received, 0);
        assert_eq!(s.messages_dropped, 2);
        // The sender still paid for every byte.
        assert_eq!(net.stats(0).bytes_sent, 10);
    }

    #[test]
    fn purge_arrived_spares_in_flight_messages() {
        let net = SimNetwork::new(2);
        let send_arriving = |arrives: u64| {
            net.send_timed(
                0,
                1,
                Bytes::from(vec![0u8]),
                breakdown(1, 0),
                SimTime(0),
                SimTime(arrives),
                0,
            );
        };
        send_arriving(10);
        send_arriving(20);
        send_arriving(30);
        assert_eq!(net.purge_arrived(1, SimTime(20)), 2);
        assert_eq!(net.pending(1), 1);
        assert_eq!(net.stats(1).messages_dropped, 2);
        let survivor = net.drain_until(1, SimTime(30));
        assert_eq!(survivor.len(), 1);
        assert_eq!(survivor[0].arrives, SimTime(30));
    }

    #[test]
    fn purge_in_flight_from_kills_only_that_senders_undelivered() {
        let net = SimNetwork::new(3);
        let send = |from: usize, arrives: u64| {
            net.send_timed(
                from,
                2,
                Bytes::from(vec![from as u8]),
                breakdown(1, 0),
                SimTime(0),
                SimTime(arrives),
                0,
            );
        };
        send(0, 5); // already delivered at cutoff: survives
        send(0, 15); // in flight from the crashing sender: killed
        send(1, 15); // in flight from a healthy sender: survives
        assert_eq!(net.purge_in_flight_from(0, SimTime(10)), 1);
        assert_eq!(net.pending(2), 2);
        assert_eq!(net.stats(2).messages_dropped, 1);
        let inbox = net.drain_until(2, SimTime(20));
        let froms: Vec<usize> = inbox.iter().map(|e| e.from).collect();
        assert_eq!(froms, vec![0, 1]);
    }

    #[test]
    fn purge_link_kills_only_that_directed_link() {
        let net = SimNetwork::new(3);
        net.send(0, 2, Bytes::from(vec![0u8; 4]), breakdown(4, 0));
        net.send(1, 2, Bytes::from(vec![0u8; 6]), breakdown(6, 0));
        net.send(0, 1, Bytes::from(vec![0u8; 2]), breakdown(2, 0));
        assert_eq!(net.purge_link(0, 2, None), (1, 4));
        assert_eq!(net.pending(2), 1, "other sender's message survives");
        assert_eq!(net.pending(1), 1, "other link untouched");
        let s = net.stats(2);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.bytes_received, 6, "receive accounting reversed");
        // The sender still paid for the bytes it pushed.
        assert_eq!(net.stats(0).bytes_sent, 6);
        // An empty link is a no-op.
        assert_eq!(net.purge_link(0, 2, None), (0, 0));
    }

    #[test]
    fn purge_link_can_filter_by_sent_round() {
        let net = SimNetwork::new(2);
        for round in [3usize, 4, 3] {
            net.send_timed(
                0,
                1,
                Bytes::from(vec![round as u8; 2]),
                breakdown(2, 0),
                SimTime(0),
                SimTime(10),
                round,
            );
        }
        assert_eq!(net.purge_link(0, 1, Some(3)), (2, 4));
        let survivors = net.drain_until(1, SimTime(10));
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].sent_round, 4, "other rounds' messages live");
    }

    #[test]
    fn plain_send_is_immediately_drainable() {
        let net = SimNetwork::new(2);
        net.send(0, 1, Bytes::from(vec![7u8]), breakdown(1, 0));
        let inbox = net.drain_until(1, SimTime::ZERO);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].arrives, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "arrive before")]
    fn arrival_before_send_rejected() {
        let net = SimNetwork::new(2);
        net.send_timed(
            0,
            1,
            Bytes::new(),
            breakdown(0, 0),
            SimTime(10),
            SimTime(5),
            0,
        );
    }
}
