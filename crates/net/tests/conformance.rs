//! Transport conformance suite.
//!
//! Every test here runs the *same* assertions against both [`Transport`]
//! backends — the deterministic [`SimNetwork`] and the real-concurrency
//! [`ThreadChannelTransport`] — pinning the contract the engine relies on:
//! delivery with per-edge FIFO order, deadline/TTL drain semantics,
//! purge-scope kill rules with receive-credit reversal, byte accounting,
//! and strictly observational tracing. A backend that passes this suite is
//! safe to put under any engine substrate.

use bytes::Bytes;
use jwins_net::{
    ByteBreakdown, PendingSend, PurgeScope, SimNetwork, ThreadChannelTransport, Transport,
};
use jwins_sim::SimTime;
use jwins_trace::{MemorySink, TraceConfig, TraceEvent, Tracer};
use std::sync::Arc;

/// Runs `check` once per backend, labelling failures with the backend name.
fn each_backend(check: impl Fn(&str, Box<dyn Transport>)) {
    check("sim", Box::new(SimNetwork::new(4)));
    check("channel", Box::new(ThreadChannelTransport::new(4)));
}

/// A send stamped with the transport's own clock — `SimTime::ZERO` (barrier
/// semantics) on the sim backend, the wall clock on the channel backend —
/// i.e. what each backend's driving engine would hand it.
fn stamped(
    net: &dyn Transport,
    from: usize,
    to: usize,
    body: Vec<u8>,
    metadata: usize,
    sent_round: usize,
) -> PendingSend {
    let now = net.now();
    PendingSend {
        from,
        to,
        breakdown: ByteBreakdown {
            payload: body.len() - metadata,
            metadata,
        },
        payload: Bytes::from(body),
        sent: now,
        arrives: now,
        sent_round,
    }
}

#[test]
fn delivery_credits_both_endpoints() {
    each_backend(|name, net| {
        net.send(stamped(&*net, 0, 1, vec![1, 2, 3], 1, 0));
        net.send(stamped(&*net, 0, 1, vec![4, 5], 0, 0));
        net.send(stamped(&*net, 2, 1, vec![6], 0, 0));
        assert_eq!(net.pending(1), 3, "{name}: queued before drain");

        let drained = net.drain(1, SimTime::MAX, None);
        assert_eq!(drained.expired, 0, "{name}");
        assert_eq!(drained.envelopes.len(), 3, "{name}");
        assert_eq!(net.pending(1), 0, "{name}: drain empties the queue");

        let sender = net.stats(0);
        assert_eq!(sender.bytes_sent, 5, "{name}: sender charged at send");
        assert_eq!(sender.payload_sent, 4, "{name}: payload component");
        assert_eq!(sender.metadata_sent, 1, "{name}: metadata component");
        assert_eq!(sender.messages_sent, 2, "{name}");
        let receiver = net.stats(1);
        assert_eq!(receiver.bytes_received, 6, "{name}: receiver credited");
        let total = net.total_stats();
        assert_eq!(total.bytes_sent, 6, "{name}");
        assert_eq!(total.messages_sent, 3, "{name}");
    });
}

#[test]
fn per_edge_delivery_is_fifo() {
    each_backend(|name, net| {
        for k in 0..32u8 {
            net.send(stamped(&*net, 0, 1, vec![k], 0, 0));
        }
        let bodies: Vec<u8> = net
            .drain(1, SimTime::MAX, None)
            .envelopes
            .iter()
            .map(|e| e.payload[0])
            .collect();
        assert_eq!(bodies, (0..32).collect::<Vec<u8>>(), "{name}");
    });
}

#[test]
fn send_batch_matches_sequential_sends() {
    each_backend(|name, net| {
        let batch: Vec<PendingSend> = (0..5u8)
            .map(|k| stamped(&*net, 0, 1, vec![k, k], 0, 0))
            .collect();
        net.send_batch(batch);
        let drained = net.drain(1, SimTime::MAX, None).envelopes;
        let bodies: Vec<u8> = drained.iter().map(|e| e.payload[0]).collect();
        assert_eq!(bodies, vec![0, 1, 2, 3, 4], "{name}: batch keeps order");
        assert_eq!(net.stats(0).messages_sent, 5, "{name}");
    });
}

#[test]
fn future_arrivals_stay_queued_until_their_deadline() {
    each_backend(|name, net| {
        let mut send = stamped(&*net, 0, 1, vec![7], 0, 0);
        // The sim backend honors the declared arrival stamp; a real wire
        // stamps arrival when the receiver pulls the frame, so any wall
        // arrival is in the future of a ZERO deadline.
        let early_deadline = if name == "sim" {
            send.arrives = send.sent.plus(SimTime::from_secs_f64(1.0));
            SimTime(send.arrives.0 - 1)
        } else {
            SimTime::ZERO
        };
        net.send(send);
        let early = net.drain(1, early_deadline, None);
        assert!(early.envelopes.is_empty(), "{name}: not arrived yet");
        assert_eq!(net.pending(1), 1, "{name}: still queued");
        let late = net.drain(1, SimTime::MAX, None);
        assert_eq!(late.envelopes.len(), 1, "{name}: delivered at MAX");
    });
}

#[test]
fn ttl_expiry_is_counted_but_not_yet_recorded() {
    each_backend(|name, net| {
        net.send(stamped(&*net, 0, 1, vec![1], 0, 0));
        // Drain far in the future with a 1-second TTL: the message is ~10
        // virtual seconds old at the deadline on both backends.
        let deadline = net.now().plus(SimTime::from_secs_f64(10.0));
        let drained = net.drain(1, deadline, Some(SimTime::from_secs_f64(1.0)));
        assert!(drained.envelopes.is_empty(), "{name}: too stale to mix");
        assert_eq!(drained.expired, 1, "{name}: expiry returned");
        assert_eq!(
            net.stats(1).messages_expired,
            0,
            "{name}: accounting deferred to the caller"
        );
        net.record_expired(1, drained.expired);
        assert_eq!(net.stats(1).messages_expired, 1, "{name}: committed");
    });
}

#[test]
fn purge_inbox_kills_queued_messages_and_reverses_receive_credit() {
    each_backend(|name, net| {
        net.send(stamped(&*net, 0, 1, vec![0; 4], 0, 0));
        net.send(stamped(&*net, 2, 1, vec![0; 6], 0, 0));
        let report = net.purge(PurgeScope::Inbox { node: 1 });
        assert_eq!(report.messages, 2, "{name}");
        assert_eq!(report.bytes, 10, "{name}");
        assert_eq!(net.pending(1), 0, "{name}");
        assert!(
            net.drain(1, SimTime::MAX, None).envelopes.is_empty(),
            "{name}: nothing left to drain"
        );
        assert_eq!(
            net.stats(1).bytes_received,
            0,
            "{name}: receive credit reversed"
        );
        assert_eq!(
            net.stats(0).bytes_sent,
            4,
            "{name}: sender keeps paying for wire bytes"
        );
    });
}

#[test]
fn purge_link_respects_the_round_filter() {
    each_backend(|name, net| {
        net.send(stamped(&*net, 0, 1, vec![3; 2], 0, 3));
        net.send(stamped(&*net, 0, 1, vec![4; 2], 0, 4));
        net.send(stamped(&*net, 2, 1, vec![9], 0, 3)); // other edge survives
        let report = net.purge(PurgeScope::Link {
            from: 0,
            to: 1,
            sent_round: Some(3),
        });
        assert_eq!(report.messages, 1, "{name}: only round 3 on the edge");
        assert_eq!(report.bytes, 2, "{name}");
        let survivors = net.drain(1, SimTime::MAX, None).envelopes;
        let tags: Vec<(usize, usize)> = survivors.iter().map(|e| (e.from, e.sent_round)).collect();
        assert!(tags.contains(&(0, 4)), "{name}: other round survives");
        assert!(tags.contains(&(2, 3)), "{name}: other edge survives");
        assert_eq!(tags.len(), 2, "{name}");
    });
}

#[test]
fn tracing_is_observational_and_sees_every_send() {
    each_backend(|name, mut net| {
        let probe = MemorySink::new();
        let mut tracer = Tracer::from_config(&TraceConfig::default()).expect("default tracer");
        tracer.push_sink(Box::new(probe.clone()));
        net.set_tracer(Arc::new(tracer));

        net.send(stamped(&*net, 0, 1, vec![1, 2], 0, 5));
        net.send(stamped(&*net, 2, 1, vec![3], 0, 5));
        let sends: Vec<(u32, u32, u64)> = probe
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::MsgSend {
                    from, to, bytes, ..
                } => Some((from, to, bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(0, 1, 2), (2, 1, 1)], "{name}");
        // Observational: delivery and accounting are unchanged.
        assert_eq!(
            net.drain(1, SimTime::MAX, None).envelopes.len(),
            2,
            "{name}"
        );
        assert_eq!(net.total_stats().bytes_sent, 3, "{name}");
    });
}
