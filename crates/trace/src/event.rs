//! The trace-event taxonomy.

use serde::{Deserialize, Serialize};

/// Why a batch of messages was destroyed (`TraceEvent::MsgKill`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillReason {
    /// A crash destroyed the victim's queued inbox.
    CrashInbox,
    /// A crash destroyed the victim's still-in-flight outgoing messages.
    CrashInFlight,
    /// A rejoin destroyed deliveries that completed while the host was down.
    RejoinArrived,
    /// Topology repair removed the edge the messages were travelling on.
    RepairEdge,
}

/// Which Byzantine perturbation an attacker applied
/// (`TraceEvent::AttackInject`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Parameters replaced with seeded wire-valid noise.
    Garbage,
    /// Parameters negated.
    SignFlip,
    /// Parameters scaled by a constant factor.
    Scale,
    /// Parameters drifted toward the colluders' shared target.
    Drift,
}

/// Which event class an execute batch carried (`TraceEvent::ExecuteBatch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchClass {
    /// `TrainDone` events: τ SGD steps plus message building per node.
    Train,
    /// `Mix` events: mailbox drain plus aggregation per node.
    Mix,
}

/// One structured telemetry event.
///
/// All variants are heapless (`Copy`), so a [`crate::FlightRecorder`]'s
/// byte bound is exactly `capacity × size_of::<TraceEvent>()`. Virtual
/// times are integer nanoseconds on the simulation clock (`t_ns`);
/// deterministic by construction. The only wall-clock (hence
/// nondeterministic) fields are the `wall_start_ns` / `*_ns` phase timings
/// of [`TraceEvent::ExecuteBatch`] — the side channel that
/// [`TraceEvent::canonical`] strips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The run began.
    RunStart {
        /// Cluster size.
        nodes: u32,
        /// Configured communication rounds.
        rounds: u32,
        /// Master seed.
        seed: u64,
    },
    /// The run ended (normally or by early stop).
    RunEnd {
        /// Final virtual time.
        t_ns: u64,
        /// Rounds completed cluster-wide.
        rounds_run: u32,
        /// High-water mark of the event-queue depth over the whole run.
        queue_depth_hwm: u32,
    },
    /// A node crashed (lifecycle epoch bumped; round in progress abandoned).
    NodeCrash {
        /// Virtual time of the crash.
        t_ns: u64,
        /// The victim.
        node: u32,
        /// The victim's lifecycle epoch after the crash.
        epoch: u64,
        /// No recovery is scheduled: survivors forget their edge state.
        permanent: bool,
    },
    /// A crashed node rejoined.
    NodeRejoin {
        /// Virtual time of the rejoin.
        t_ns: u64,
        /// The rejoiner.
        node: u32,
        /// The rejoiner's lifecycle epoch after the rejoin.
        epoch: u64,
        /// Donor node for a re-synced rejoin (`None` = warm restart).
        resync_from: Option<u32>,
    },
    /// A message entered the transport.
    MsgSend {
        /// Virtual send time.
        t_ns: u64,
        /// Sender.
        from: u32,
        /// Receiver.
        to: u32,
        /// The sender's round stamp.
        round: u32,
        /// Wire bytes.
        bytes: u64,
        /// Virtual arrival time.
        arrives_ns: u64,
    },
    /// The loss model dropped a message at send time.
    MsgDrop {
        /// Virtual send time.
        t_ns: u64,
        /// Sender.
        from: u32,
        /// Receiver.
        to: u32,
        /// The sender's round stamp.
        round: u32,
        /// Wire bytes lost.
        bytes: u64,
    },
    /// A purge destroyed `count` messages at `node`.
    MsgKill {
        /// Virtual time of the purge.
        t_ns: u64,
        /// The node whose messages died (victim or edge endpoint).
        node: u32,
        /// Messages destroyed.
        count: u64,
        /// What destroyed them.
        reason: KillReason,
    },
    /// TTL expiry at mailbox drain discarded `count` messages.
    MsgExpire {
        /// Virtual drain time.
        t_ns: u64,
        /// The draining node.
        node: u32,
        /// The draining node's round.
        round: u32,
        /// Messages expired (TTL plus over-cap drops).
        count: u64,
    },
    /// One message was mixed into a node's aggregate.
    MsgMixed {
        /// Virtual mix time.
        t_ns: u64,
        /// The aggregating node.
        node: u32,
        /// The sender.
        from: u32,
        /// The aggregating node's round.
        round: u32,
        /// The sender's round stamp.
        sent_round: u32,
        /// Message age at mix time, in virtual seconds.
        staleness_s: f64,
    },
    /// A node finished its local training for a round.
    Train {
        /// Virtual completion time.
        t_ns: u64,
        /// The node.
        node: u32,
        /// The round trained for.
        round: u32,
        /// Virtual compute duration (τ local steps at this node's speed).
        compute_ns: u64,
    },
    /// A round context was resolved (topology + participation + repair).
    RoundResolve {
        /// Virtual time of the resolution.
        t_ns: u64,
        /// The round.
        round: u32,
        /// Undirected edges in the (possibly repaired) round topology.
        edges: u32,
        /// Resolved through the liveness-aware repair path.
        repaired: bool,
    },
    /// A crash abandoned a node's round in progress.
    RoundAbandon {
        /// Virtual time of the crash.
        t_ns: u64,
        /// The crashed node.
        node: u32,
        /// The abandoned round.
        round: u32,
    },
    /// The n-th node passed a round: it is complete cluster-wide.
    RoundComplete {
        /// Virtual completion time.
        t_ns: u64,
        /// The completed round.
        round: u32,
    },
    /// An evaluation point fired (round-complete eval or virtual-time tick).
    Eval {
        /// Virtual evaluation time.
        t_ns: u64,
        /// Last completed round at evaluation time.
        round: u32,
        /// `true` for an `eval_interval_s` checkpoint tick.
        checkpoint: bool,
        /// Mean test accuracy across nodes.
        accuracy: f64,
    },
    /// Topology repair rewired cached round contexts after a lifecycle
    /// event (or resolved a fresh round through the repair path).
    RepairRewire {
        /// Virtual time of the rewire.
        t_ns: u64,
        /// Live-set version the rewire was computed against.
        live_version: u64,
        /// Detour edges added across the re-resolved rounds.
        edges_added: u64,
        /// Rounds re-resolved (1 for a fresh `RoundResolve`-path repair).
        rounds_refreshed: u32,
    },
    /// A strategy's pair-vs-fresh-fallback decisions since its last report
    /// (see `ShareStrategy::pairing_stats`; PowerGossip implements it).
    StrategyPairing {
        /// Virtual time of the report (the node's mix commit).
        t_ns: u64,
        /// The reporting node.
        node: u32,
        /// The node's round at the report.
        round: u32,
        /// Successfully paired exchanges.
        paired: u64,
        /// Fresh-plane fallbacks (divergence, desync, overfull stash).
        fresh_resets: u64,
        /// Pre-advance leftovers ignored without a reset.
        ignored: u64,
    },
    /// A Byzantine node perturbed the parameters it advertised for a round
    /// (injection happens at message-build time, right after the node's
    /// `Train` event; a crashed node builds no messages and never injects).
    AttackInject {
        /// Virtual time of the injection (the node's train completion).
        t_ns: u64,
        /// The attacking node.
        node: u32,
        /// The round whose outbound messages carry the perturbation.
        round: u32,
        /// Which perturbation was applied.
        kind: AttackKind,
    },
    /// A robust aggregation rule removed mass at a node's mix (emitted only
    /// when something was actually trimmed or clipped).
    RobustClip {
        /// Virtual time of the mix commit.
        t_ns: u64,
        /// The aggregating node.
        node: u32,
        /// The node's round at the mix.
        round: u32,
        /// Entries removed: trimmed coordinate entries, or clipped messages.
        clipped: u64,
        /// Mixing weight removed and renormalized over the surviving
        /// entries.
        mass: f64,
    },
    /// One parallel execute batch ran. The `wall_*`/`*_ns` phase fields are
    /// host wall-clock (the nondeterministic side channel); everything else
    /// is deterministic.
    ExecuteBatch {
        /// Virtual time of the batch.
        t_ns: u64,
        /// The event class the batch carried.
        class: BatchClass,
        /// The round (mix batches are single-round; train batches report
        /// the first item's round).
        round: u32,
        /// Events in the batch after stale-epoch filtering.
        width: u32,
        /// Queue depth right after the batch was popped.
        queue_depth: u32,
        /// The event-queue shard the batch head was routed to (0 on the
        /// unsharded engine; absent in pre-shard traces, which parse as 0).
        #[serde(default)]
        shard: u32,
        /// Wall-clock offset of the propose phase from run start (ns).
        wall_start_ns: u64,
        /// Wall nanoseconds spent in the sequential propose phase.
        propose_ns: u64,
        /// Wall nanoseconds spent in the parallel execute phase.
        execute_ns: u64,
        /// Wall nanoseconds spent in the sequential commit phase.
        commit_ns: u64,
    },
}

impl TraceEvent {
    /// Virtual time of the event on the simulation clock (ns);
    /// [`TraceEvent::RunStart`] is pinned to 0.
    pub fn t_ns(&self) -> u64 {
        match *self {
            TraceEvent::RunStart { .. } => 0,
            TraceEvent::RunEnd { t_ns, .. }
            | TraceEvent::NodeCrash { t_ns, .. }
            | TraceEvent::NodeRejoin { t_ns, .. }
            | TraceEvent::MsgSend { t_ns, .. }
            | TraceEvent::MsgDrop { t_ns, .. }
            | TraceEvent::MsgKill { t_ns, .. }
            | TraceEvent::MsgExpire { t_ns, .. }
            | TraceEvent::MsgMixed { t_ns, .. }
            | TraceEvent::Train { t_ns, .. }
            | TraceEvent::RoundResolve { t_ns, .. }
            | TraceEvent::RoundAbandon { t_ns, .. }
            | TraceEvent::RoundComplete { t_ns, .. }
            | TraceEvent::Eval { t_ns, .. }
            | TraceEvent::RepairRewire { t_ns, .. }
            | TraceEvent::StrategyPairing { t_ns, .. }
            | TraceEvent::AttackInject { t_ns, .. }
            | TraceEvent::RobustClip { t_ns, .. }
            | TraceEvent::ExecuteBatch { t_ns, .. } => t_ns,
        }
    }

    /// The variant name, stable across releases — the key used by event
    /// counters (`trace_report`), the metrics registry and `run_diff`'s
    /// per-kind delta table.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "RunStart",
            TraceEvent::RunEnd { .. } => "RunEnd",
            TraceEvent::NodeCrash { .. } => "NodeCrash",
            TraceEvent::NodeRejoin { .. } => "NodeRejoin",
            TraceEvent::MsgSend { .. } => "MsgSend",
            TraceEvent::MsgDrop { .. } => "MsgDrop",
            TraceEvent::MsgKill { .. } => "MsgKill",
            TraceEvent::MsgExpire { .. } => "MsgExpire",
            TraceEvent::MsgMixed { .. } => "MsgMixed",
            TraceEvent::Train { .. } => "Train",
            TraceEvent::RoundResolve { .. } => "RoundResolve",
            TraceEvent::RoundAbandon { .. } => "RoundAbandon",
            TraceEvent::RoundComplete { .. } => "RoundComplete",
            TraceEvent::Eval { .. } => "Eval",
            TraceEvent::RepairRewire { .. } => "RepairRewire",
            TraceEvent::StrategyPairing { .. } => "StrategyPairing",
            TraceEvent::AttackInject { .. } => "AttackInject",
            TraceEvent::RobustClip { .. } => "RobustClip",
            TraceEvent::ExecuteBatch { .. } => "ExecuteBatch",
        }
    }

    /// The event with its wall-clock side channel zeroed: canonical traces
    /// are invariant under the worker-thread count (and host load), so they
    /// can be compared across runs the way `RoundRecord`s are.
    #[must_use]
    pub fn canonical(self) -> Self {
        match self {
            TraceEvent::ExecuteBatch {
                t_ns,
                class,
                round,
                width,
                queue_depth,
                shard,
                ..
            } => TraceEvent::ExecuteBatch {
                t_ns,
                class,
                round,
                width,
                queue_depth,
                shard,
                wall_start_ns: 0,
                propose_ns: 0,
                execute_ns: 0,
                commit_ns: 0,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                nodes: 16,
                rounds: 30,
                seed: 42,
            },
            TraceEvent::RunEnd {
                t_ns: 9_000_000_000,
                rounds_run: 30,
                queue_depth_hwm: 48,
            },
            TraceEvent::NodeCrash {
                t_ns: 6_500_000_000,
                node: 3,
                epoch: 1,
                permanent: false,
            },
            TraceEvent::NodeRejoin {
                t_ns: 14_500_000_000,
                node: 3,
                epoch: 2,
                resync_from: Some(0),
            },
            TraceEvent::NodeRejoin {
                t_ns: 14_500_000_000,
                node: 4,
                epoch: 2,
                resync_from: None,
            },
            TraceEvent::MsgSend {
                t_ns: 1_000,
                from: 0,
                to: 1,
                round: 0,
                bytes: 4096,
                arrives_ns: 6_000,
            },
            TraceEvent::MsgDrop {
                t_ns: 1_000,
                from: 0,
                to: 2,
                round: 0,
                bytes: 4096,
            },
            TraceEvent::MsgKill {
                t_ns: 6_500_000_000,
                node: 3,
                count: 5,
                reason: KillReason::CrashInbox,
            },
            TraceEvent::MsgExpire {
                t_ns: 2_000_000,
                node: 7,
                round: 4,
                count: 2,
            },
            TraceEvent::MsgMixed {
                t_ns: 2_000_000,
                node: 7,
                from: 2,
                round: 4,
                sent_round: 3,
                staleness_s: 0.125,
            },
            TraceEvent::Train {
                t_ns: 1_000_000,
                node: 0,
                round: 0,
                compute_ns: 1_000_000,
            },
            TraceEvent::RoundResolve {
                t_ns: 0,
                round: 0,
                edges: 32,
                repaired: true,
            },
            TraceEvent::RoundAbandon {
                t_ns: 6_500_000_000,
                node: 3,
                round: 6,
            },
            TraceEvent::RoundComplete {
                t_ns: 3_000_000_000,
                round: 2,
            },
            TraceEvent::Eval {
                t_ns: 3_000_000_000,
                round: 2,
                checkpoint: false,
                accuracy: 0.875,
            },
            TraceEvent::RepairRewire {
                t_ns: 6_500_000_000,
                live_version: 2,
                edges_added: 3,
                rounds_refreshed: 2,
            },
            TraceEvent::StrategyPairing {
                t_ns: 2_000_000,
                node: 7,
                round: 4,
                paired: 3,
                fresh_resets: 1,
                ignored: 0,
            },
            TraceEvent::AttackInject {
                t_ns: 1_000_000,
                node: 5,
                round: 0,
                kind: AttackKind::SignFlip,
            },
            TraceEvent::RobustClip {
                t_ns: 2_000_000,
                node: 7,
                round: 4,
                clipped: 12,
                mass: 0.75,
            },
            TraceEvent::ExecuteBatch {
                t_ns: 1_000_000,
                class: BatchClass::Mix,
                round: 4,
                width: 6,
                queue_depth: 20,
                shard: 3,
                wall_start_ns: 123,
                propose_ns: 456,
                execute_ns: 789,
                commit_ns: 10,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        for ev in samples() {
            let line = serde::json::to_string(&ev);
            let back: TraceEvent = serde::json::from_str(&line).expect("parses back");
            assert_eq!(back, ev, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn pre_shard_batch_lines_parse_with_shard_zero() {
        // Fixture traces recorded before the sharded engine carry no
        // `shard` key; they must keep loading (and comparing) as shard 0.
        let line = "{\"ExecuteBatch\":{\"t_ns\":1000,\"class\":\"Train\",\
                    \"round\":2,\"width\":4,\"queue_depth\":8,\
                    \"wall_start_ns\":5,\"propose_ns\":6,\"execute_ns\":7,\
                    \"commit_ns\":8}}";
        let ev: TraceEvent = serde::json::from_str(line).expect("old line parses");
        match ev {
            TraceEvent::ExecuteBatch { shard, width, .. } => {
                assert_eq!(shard, 0);
                assert_eq!(width, 4);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn canonical_strips_only_the_wall_side_channel() {
        for ev in samples() {
            let canon = ev.canonical();
            match ev {
                TraceEvent::ExecuteBatch {
                    t_ns,
                    class,
                    round,
                    width,
                    queue_depth,
                    shard,
                    ..
                } => {
                    assert_eq!(
                        canon,
                        TraceEvent::ExecuteBatch {
                            t_ns,
                            class,
                            round,
                            width,
                            queue_depth,
                            shard,
                            wall_start_ns: 0,
                            propose_ns: 0,
                            execute_ns: 0,
                            commit_ns: 0,
                        }
                    );
                }
                other => assert_eq!(canon, other, "non-batch events are untouched"),
            }
            assert_eq!(canon.t_ns(), ev.t_ns(), "virtual time survives");
        }
    }

    #[test]
    fn events_are_heapless() {
        // The flight-recorder byte bound counts `size_of::<TraceEvent>()`
        // per slot; a variant growing a heap allocation would break it.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceEvent>();
    }
}
