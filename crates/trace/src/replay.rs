//! Replaying recorded traces: JSONL parsing and canonicalization.
//!
//! The archival trace format is one JSON object per line (written by
//! [`crate::JsonlWriter`]). Everything downstream of the engine — the
//! metrics registry, the critical-path analyzer, `trace_report`,
//! `run_diff` — consumes either a live sink or a recorded file through the
//! helpers here, so the parse/validate logic exists exactly once.

use crate::TraceEvent;
use std::path::Path;

/// A malformed line in a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFailure {
    /// 1-based line number in the file.
    pub line: usize,
    /// The parser's error rendering.
    pub message: String,
}

impl std::fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// The outcome of parsing a JSONL trace: every parsable event in stream
/// order, plus the lines that failed to parse (empty for a healthy trace).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedTrace {
    /// Events in stream (commit) order.
    pub events: Vec<TraceEvent>,
    /// Unparsable lines, in file order.
    pub failures: Vec<ParseFailure>,
}

impl ParsedTrace {
    /// Whether every non-empty line parsed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Parses JSONL text into events; blank lines are skipped, malformed lines
/// are collected rather than aborting the parse (a truncated tail must not
/// hide the events before it).
pub fn parse_jsonl(text: &str) -> ParsedTrace {
    let mut parsed = ParsedTrace::default();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde::json::from_str::<TraceEvent>(line) {
            Ok(event) => parsed.events.push(event),
            Err(e) => parsed.failures.push(ParseFailure {
                line: index + 1,
                message: format!("{e:?}"),
            }),
        }
    }
    parsed
}

/// Reads and parses a JSONL trace file.
///
/// # Errors
///
/// Returns the I/O error when the file cannot be read; parse failures are
/// reported per line inside the returned [`ParsedTrace`] instead.
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<ParsedTrace> {
    Ok(parse_jsonl(&std::fs::read_to_string(path)?))
}

/// Canonicalizes a whole stream ([`TraceEvent::canonical`] per event):
/// strips the wall-clock side channel so two streams compare the way
/// `RoundRecord`s do — invariant under thread count and host load.
pub fn canonicalize(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events.iter().map(|e| e.canonical()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchClass;

    #[test]
    fn parse_collects_events_and_failures() {
        let text = "\
{\"RunStart\":{\"nodes\":2,\"rounds\":1,\"seed\":7}}\n\
\n\
not json\n\
{\"RoundComplete\":{\"t_ns\":5,\"round\":0}}\n";
        let parsed = parse_jsonl(text);
        assert_eq!(parsed.events.len(), 2);
        assert!(!parsed.is_clean());
        assert_eq!(parsed.failures.len(), 1);
        assert_eq!(parsed.failures[0].line, 3);
        assert!(parsed.failures[0].to_string().starts_with("line 3:"));
    }

    #[test]
    fn read_round_trips_a_written_file() {
        let events = vec![
            TraceEvent::RunStart {
                nodes: 4,
                rounds: 2,
                seed: 42,
            },
            TraceEvent::ExecuteBatch {
                t_ns: 10,
                class: BatchClass::Train,
                round: 0,
                width: 4,
                queue_depth: 8,
                shard: 0,
                wall_start_ns: 1,
                propose_ns: 2,
                execute_ns: 3,
                commit_ns: 4,
            },
            TraceEvent::RunEnd {
                t_ns: 20,
                rounds_run: 2,
                queue_depth_hwm: 8,
            },
        ];
        let dir = std::env::temp_dir().join(format!("jwins-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let mut text = String::new();
        for event in &events {
            text.push_str(&serde::json::to_string(event));
            text.push('\n');
        }
        std::fs::write(&path, text).unwrap();
        let parsed = read_jsonl(&path).unwrap();
        assert!(parsed.is_clean());
        assert_eq!(parsed.events, events);
        // Canonicalization zeroes exactly the batch's wall fields.
        let canon = canonicalize(&parsed.events);
        assert_eq!(canon[0], events[0]);
        assert_ne!(canon[1], events[1]);
        assert_eq!(canon[1], events[1].canonical());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(read_jsonl("/nonexistent-dir-for-sure/trace.jsonl").is_err());
    }
}
