//! Trace sinks: where emitted events go.

use crate::TraceEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Arc;

/// A consumer of trace events.
///
/// `record` runs inside the engine's sequential commit path under the
/// tracer's lock — implementations must not block on anything slower than
/// buffered I/O, and must not panic on I/O failure (telemetry is
/// best-effort; a full disk must not kill a run).
pub trait TraceSink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flushes buffered output (end of run, or an explicit dump point).
    fn flush(&mut self) {}
}

/// A cloneable in-memory collector for tests and controllers. Clones share
/// the same buffer, so a handle kept outside the engine sees everything the
/// attached sink recorded.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.lock().push(*event);
    }
}

/// A JSONL writer: one JSON object per line, the archival trace format
/// consumed by the `trace_report` bin. Write errors are swallowed after the
/// first (telemetry must never fail a run); `create` still fails eagerly so
/// an unwritable path surfaces as a configuration error at build time.
pub struct JsonlWriter {
    out: Option<std::io::BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonlWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("open", &self.out.is_some())
            .finish()
    }
}

impl JsonlWriter {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (tests, in-memory buffers).
    pub fn from_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Some(std::io::BufWriter::new(out)),
        }
    }
}

impl TraceSink for JsonlWriter {
    fn record(&mut self, event: &TraceEvent) {
        if let Some(out) = &mut self.out {
            let line = serde::json::to_string(event);
            if writeln!(out, "{line}").is_err() {
                // First failure wedges the sink: no point retrying a full
                // disk once per event.
                self.out = None;
            }
        }
    }

    fn flush(&mut self) {
        if let Some(out) = &mut self.out {
            let _ = out.flush();
        }
    }
}

/// The bounded ring shared by [`FlightRecorder`] handles.
#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    cap_events: usize,
}

/// A byte-bounded flight-recorder ring buffer: always cheap, always on.
///
/// The ring retains the most recent events whose total in-memory size never
/// exceeds the configured byte bound (at least one event, so a tiny bound
/// still captures the crash site). Events are heapless, so the bound is
/// exactly `capacity_events × size_of::<TraceEvent>()`. Clones share the
/// ring; keep one handle outside the engine to [`FlightRecorder::dump`] the
/// tail after a run (the [`crate::Tracer`] does this automatically on panic
/// or protocol violation via its internal ring).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Arc<Mutex<Ring>>,
}

impl FlightRecorder {
    /// A ring holding as many events as fit in `bytes` (floor of one).
    pub fn with_byte_bound(bytes: usize) -> Self {
        let cap_events = (bytes / std::mem::size_of::<TraceEvent>()).max(1);
        Self {
            ring: Arc::new(Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap_events.min(1024)),
                cap_events,
            })),
        }
    }

    /// Maximum number of events the ring retains.
    pub fn capacity_events(&self) -> usize {
        self.ring.lock().cap_events
    }

    /// Bytes currently held (`len × size_of::<TraceEvent>()`).
    pub fn bytes_used(&self) -> usize {
        self.ring.lock().buf.len() * std::mem::size_of::<TraceEvent>()
    }

    /// The retained tail, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.ring.lock().buf.iter().copied().collect()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, event: &TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.buf.len() == ring.cap_events {
            ring.buf.pop_front();
        }
        ring.buf.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchClass, KillReason};
    use proptest::prelude::*;

    fn ev(i: u64) -> TraceEvent {
        // A deterministic mix of variants keyed by `i`.
        match i % 4 {
            0 => TraceEvent::Train {
                t_ns: i,
                node: (i % 7) as u32,
                round: (i % 5) as u32,
                compute_ns: i * 3,
            },
            1 => TraceEvent::MsgKill {
                t_ns: i,
                node: (i % 7) as u32,
                count: i,
                reason: KillReason::RepairEdge,
            },
            2 => TraceEvent::ExecuteBatch {
                t_ns: i,
                class: BatchClass::Train,
                round: (i % 5) as u32,
                width: 3,
                queue_depth: 9,
                shard: (i % 3) as u32,
                wall_start_ns: i,
                propose_ns: 1,
                execute_ns: 2,
                commit_ns: 3,
            },
            _ => TraceEvent::RoundComplete {
                t_ns: i,
                round: (i % 5) as u32,
            },
        }
    }

    #[test]
    fn memory_sink_clones_share_the_buffer() {
        let handle = MemorySink::new();
        let mut attached = handle.clone();
        attached.record(&ev(0));
        attached.record(&ev(1));
        assert_eq!(handle.len(), 2);
        assert_eq!(handle.events()[0], ev(0));
        assert!(!handle.is_empty());
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_event() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlWriter::from_writer(Box::new(Shared(Arc::clone(&buf))));
        for i in 0..4 {
            sink.record(&ev(i));
        }
        sink.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            let back: TraceEvent = serde::json::from_str(line).expect("line parses");
            assert_eq!(back, ev(i as u64));
        }
    }

    #[test]
    fn flight_recorder_keeps_the_tail() {
        let bound = 10 * std::mem::size_of::<TraceEvent>();
        let handle = FlightRecorder::with_byte_bound(bound);
        assert_eq!(handle.capacity_events(), 10);
        let mut attached = handle.clone();
        for i in 0..25u64 {
            attached.record(&ev(i));
        }
        let tail = handle.dump();
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0], ev(15), "oldest retained event");
        assert_eq!(tail[9], ev(24), "newest event");
    }

    #[test]
    fn tiny_byte_bound_still_holds_one_event() {
        let mut rec = FlightRecorder::with_byte_bound(0);
        assert_eq!(rec.capacity_events(), 1);
        rec.record(&ev(1));
        rec.record(&ev(2));
        assert_eq!(rec.dump(), vec![ev(2)]);
    }

    proptest! {
        #[test]
        fn ring_never_exceeds_its_byte_bound(
            bound in 0usize..4096,
            stream in proptest::collection::vec(0u64..1000, 0..200),
        ) {
            let handle = FlightRecorder::with_byte_bound(bound);
            let mut attached = handle.clone();
            let effective = bound.max(std::mem::size_of::<TraceEvent>());
            for (k, &i) in stream.iter().enumerate() {
                attached.record(&ev(i));
                prop_assert!(handle.bytes_used() <= effective);
                let expect = (k + 1).min(handle.capacity_events());
                prop_assert_eq!(handle.dump().len(), expect);
            }
            // The retained tail is exactly the stream's suffix.
            let tail = handle.dump();
            let suffix: Vec<TraceEvent> = stream
                .iter()
                .skip(stream.len().saturating_sub(handle.capacity_events()))
                .map(|&i| ev(i))
                .collect();
            prop_assert_eq!(tail, suffix);
        }
    }
}
