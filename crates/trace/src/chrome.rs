//! Chrome trace-event (Perfetto-loadable) export.

use crate::{BatchClass, TraceEvent, TraceSink};
use serde::Value;
use std::io::Write;

/// Exports the engine's propose/execute/commit phase timings as a Chrome
/// trace-event JSON file (`chrome://tracing` / [Perfetto] both load it).
///
/// Each [`TraceEvent::ExecuteBatch`] becomes three complete (`"ph":"X"`)
/// spans on dedicated phase lanes, placed at the batch's wall-clock offset
/// from run start; span names carry the event class and batch width, so
/// singleton batches (the parallelism killer) are visible at a glance.
/// Everything else in the trace stream is ignored — the JSONL sink is the
/// lossless archival format; this one is for eyeballs.
///
/// [Perfetto]: https://ui.perfetto.dev
pub struct ChromeTraceWriter {
    file: Option<std::fs::File>,
    spans: Vec<Value>,
}

impl std::fmt::Debug for ChromeTraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceWriter")
            .field("spans", &self.spans.len())
            .finish()
    }
}

/// One complete span in trace-event form. Times are microseconds (floats),
/// per the trace-event spec.
fn span(name: String, ts_ns: u64, dur_ns: u64, tid: u64) -> Value {
    Value::Map(vec![
        ("name".into(), Value::Str(name)),
        ("cat".into(), Value::Str("engine".into())),
        ("ph".into(), Value::Str("X".into())),
        ("ts".into(), Value::F64(ts_ns as f64 / 1_000.0)),
        ("dur".into(), Value::F64(dur_ns as f64 / 1_000.0)),
        ("pid".into(), Value::U64(1)),
        ("tid".into(), Value::U64(tid)),
    ])
}

/// A thread-name metadata record labelling one phase lane.
fn lane_name(tid: u64, name: &str) -> Value {
    Value::Map(vec![
        ("name".into(), Value::Str("thread_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::U64(1)),
        ("tid".into(), Value::U64(tid)),
        (
            "args".into(),
            Value::Map(vec![("name".into(), Value::Str(name.into()))]),
        ),
    ])
}

impl ChromeTraceWriter {
    /// Lane ids for the three engine phases.
    const TID_PROPOSE: u64 = 0;
    const TID_EXECUTE: u64 = 1;
    const TID_COMMIT: u64 = 2;

    /// Creates (truncating) the export file at `path`. The JSON is written
    /// on [`TraceSink::flush`], which the tracer calls at end of run.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            file: Some(file),
            spans: vec![
                lane_name(Self::TID_PROPOSE, "propose"),
                lane_name(Self::TID_EXECUTE, "execute"),
                lane_name(Self::TID_COMMIT, "commit"),
            ],
        })
    }

    /// The export document built so far (tests; flush writes the same).
    pub fn document(&self) -> Value {
        Value::Map(vec![
            ("traceEvents".into(), Value::Seq(self.spans.clone())),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
    }
}

impl TraceSink for ChromeTraceWriter {
    fn record(&mut self, event: &TraceEvent) {
        let TraceEvent::ExecuteBatch {
            class,
            width,
            wall_start_ns,
            propose_ns,
            execute_ns,
            commit_ns,
            ..
        } = *event
        else {
            return;
        };
        let label = match class {
            BatchClass::Train => "train",
            BatchClass::Mix => "mix",
        };
        let name = format!("{label}×{width}");
        self.spans.push(span(
            name.clone(),
            wall_start_ns,
            propose_ns,
            Self::TID_PROPOSE,
        ));
        self.spans.push(span(
            name.clone(),
            wall_start_ns + propose_ns,
            execute_ns,
            Self::TID_EXECUTE,
        ));
        self.spans.push(span(
            name,
            wall_start_ns + propose_ns + execute_ns,
            commit_ns,
            Self::TID_COMMIT,
        ));
    }

    fn flush(&mut self) {
        if let Some(mut file) = self.file.take() {
            let text = serde::json::to_string(&self.document());
            let _ = file.write_all(text.as_bytes());
            let _ = file.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::find_field;

    fn batch(i: u64) -> TraceEvent {
        TraceEvent::ExecuteBatch {
            t_ns: i * 1_000,
            class: if i.is_multiple_of(2) {
                BatchClass::Train
            } else {
                BatchClass::Mix
            },
            round: i as u32,
            width: 4,
            queue_depth: 12,
            shard: (i % 2) as u32,
            wall_start_ns: i * 10_000,
            propose_ns: 100,
            execute_ns: 2_000,
            commit_ns: 50,
        }
    }

    #[test]
    fn export_is_a_valid_loadable_trace() {
        let dir = std::env::temp_dir().join("jwins_trace_chrome_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let mut sink = ChromeTraceWriter::create(&path).unwrap();
        for i in 0..3 {
            sink.record(&batch(i));
            // Non-batch events are ignored without an entry.
            sink.record(&TraceEvent::RoundComplete {
                t_ns: i,
                round: i as u32,
            });
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde::json::parse(&text).expect("export is valid JSON");
        let map = doc.as_map().expect("top level is an object");
        let events = find_field(map, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        // 3 lane-name metadata records + 3 spans per batch.
        assert_eq!(events.len(), 3 + 3 * 3);
        for entry in events {
            let fields = entry.as_map().expect("span is an object");
            let ph = find_field(fields, "ph").expect("ph present");
            assert!(
                matches!(ph, Value::Str(s) if s == "X" || s == "M"),
                "only complete spans and metadata"
            );
            if matches!(ph, Value::Str(s) if s == "X") {
                for key in ["name", "ts", "dur", "pid", "tid"] {
                    assert!(find_field(fields, key).is_some(), "span field {key}");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spans_tile_the_wall_timeline_per_phase() {
        let dir = std::env::temp_dir().join("jwins_trace_chrome_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let mut sink = ChromeTraceWriter::create(&path).unwrap();
        sink.record(&batch(1));
        let doc = sink.document();
        let events = find_field(doc.as_map().unwrap(), "traceEvents")
            .and_then(Value::as_seq)
            .unwrap();
        let xs: Vec<&Value> = events
            .iter()
            .filter(|e| {
                matches!(
                    find_field(e.as_map().unwrap(), "ph"),
                    Some(Value::Str(s)) if s == "X"
                )
            })
            .collect();
        assert_eq!(xs.len(), 3);
        let ts = |v: &Value| match find_field(v.as_map().unwrap(), "ts").unwrap() {
            Value::F64(x) => *x,
            other => panic!("ts should be a float, got {other:?}"),
        };
        // propose at wall start; execute after propose; commit after execute
        // (μs: 10_000 ns = 10 μs etc.).
        assert_eq!(ts(xs[0]), 10.0);
        assert_eq!(ts(xs[1]), 10.1);
        assert_eq!(ts(xs[2]), 12.1);
        std::fs::remove_file(&path).ok();
    }
}
