//! The tracer: configuration, fan-out to sinks, and the panic dump.

use crate::{ChromeTraceWriter, FlightRecorder, JsonlWriter, TraceEvent, TraceSink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default byte bound of the always-on flight-recorder ring (64 KiB —
/// a few hundred events, far below the engine's per-round allocations).
pub const DEFAULT_FLIGHT_RECORDER_BYTES: usize = 64 * 1024;

/// Tracing configuration, carried on `TrainConfig::trace`.
///
/// The default is "flight recorder only": no files are written, but the
/// last [`DEFAULT_FLIGHT_RECORDER_BYTES`] worth of events are always
/// retained in memory and dumped to stderr on panic or protocol violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Write every event as one JSON line to this path.
    #[serde(default)]
    pub jsonl_path: Option<String>,
    /// Write a Chrome trace-event (Perfetto-loadable) export of the
    /// propose/execute/commit phase spans to this path.
    #[serde(default)]
    pub chrome_path: Option<String>,
    /// Byte bound of the always-on flight-recorder ring (floor of one
    /// event).
    pub flight_recorder_bytes: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            jsonl_path: None,
            chrome_path: None,
            flight_recorder_bytes: DEFAULT_FLIGHT_RECORDER_BYTES,
        }
    }
}

struct Inner {
    sinks: Vec<Box<dyn TraceSink>>,
    ring: FlightRecorder,
}

/// Fans emitted events out to the configured sinks and the always-on
/// flight-recorder ring. Shared as an `Arc` between the engine and the
/// network transport; emission takes one uncontended lock (all emitting
/// code is sequential by the determinism contract — see the crate docs).
pub struct Tracer {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer with the config's file sinks attached.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a configured output path cannot be created
    /// (surfaced eagerly so a bad path fails the build, not the run's end).
    pub fn from_config(config: &TraceConfig) -> std::io::Result<Self> {
        let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
        if let Some(path) = &config.jsonl_path {
            sinks.push(Box::new(JsonlWriter::create(path)?));
        }
        if let Some(path) = &config.chrome_path {
            sinks.push(Box::new(ChromeTraceWriter::create(path)?));
        }
        Ok(Self {
            inner: Mutex::new(Inner {
                sinks,
                ring: FlightRecorder::with_byte_bound(config.flight_recorder_bytes),
            }),
        })
    }

    /// Attaches an extra sink (an in-memory collector, a test probe).
    pub fn push_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.inner.lock().sinks.push(sink);
    }

    /// Records one event into the ring and every attached sink.
    pub fn emit(&self, event: TraceEvent) {
        let mut inner = self.inner.lock();
        inner.ring.record(&event);
        for sink in &mut inner.sinks {
            sink.record(&event);
        }
    }

    /// The flight-recorder tail, oldest first.
    pub fn flight_dump(&self) -> Vec<TraceEvent> {
        self.inner.lock().ring.dump()
    }

    /// Flushes every sink (end of run).
    pub fn finish(&self) {
        let mut inner = self.inner.lock();
        for sink in &mut inner.sinks {
            sink.flush();
        }
    }

    /// Dumps the flight-recorder tail to stderr as JSONL, newest last —
    /// the post-mortem path for panics and protocol violations.
    pub fn dump_flight_to_stderr(&self, reason: &str) {
        let tail = self.flight_dump();
        eprintln!(
            "--- flight recorder ({reason}): last {} events ---",
            tail.len()
        );
        for event in &tail {
            eprintln!("{}", serde::json::to_string(event));
        }
        eprintln!("--- end flight recorder ---");
    }
}

/// Dumps the tracer's flight recorder to stderr if the scope unwinds with a
/// panic — arm it at the top of a run so the last events before the crash
/// site are never lost.
pub struct FlightDumpGuard {
    tracer: Arc<Tracer>,
}

impl FlightDumpGuard {
    /// Arms the guard for `tracer`.
    pub fn new(tracer: Arc<Tracer>) -> Self {
        Self { tracer }
    }
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.tracer.dump_flight_to_stderr("panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::RoundComplete {
            t_ns: i,
            round: i as u32,
        }
    }

    #[test]
    fn config_default_is_flight_recorder_only() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.jsonl_path, None);
        assert_eq!(cfg.chrome_path, None);
        assert_eq!(cfg.flight_recorder_bytes, DEFAULT_FLIGHT_RECORDER_BYTES);
        let round: TraceConfig =
            serde::json::from_str(&serde::json::to_string(&cfg)).expect("round-trips");
        assert_eq!(round, cfg);
    }

    #[test]
    fn emit_reaches_ring_and_sinks() {
        let mut tracer = Tracer::from_config(&TraceConfig::default()).unwrap();
        let mem = MemorySink::new();
        tracer.push_sink(Box::new(mem.clone()));
        let tracer = Arc::new(tracer);
        tracer.emit(ev(1));
        tracer.emit(ev(2));
        assert_eq!(mem.events(), vec![ev(1), ev(2)]);
        assert_eq!(tracer.flight_dump(), vec![ev(1), ev(2)]);
        tracer.finish();
    }

    #[test]
    fn bad_jsonl_path_fails_eagerly() {
        let cfg = TraceConfig {
            jsonl_path: Some("/nonexistent-dir-for-sure/trace.jsonl".into()),
            ..TraceConfig::default()
        };
        assert!(Tracer::from_config(&cfg).is_err());
    }

    #[test]
    fn guard_without_panic_is_silent() {
        let tracer = Arc::new(Tracer::from_config(&TraceConfig::default()).unwrap());
        let guard = FlightDumpGuard::new(Arc::clone(&tracer));
        drop(guard);
    }
}
