//! Deterministic run telemetry for the JWINS engine.
//!
//! The engine's `RoundRecord` stream says *what* a run achieved; this crate
//! records *why* — per-event lifecycle telemetry (crashes, kills, expiries,
//! repair rewires, strategy pairing decisions) and per-batch execute records
//! (batch width, queue depth, propose/execute/commit wall-nanos) — without
//! ever being allowed to change a result.
//!
//! # The determinism contract
//!
//! Every [`TraceEvent`] is emitted from *sequential* engine code (the
//! propose or commit phase of the event loop, or the barrier phases of the
//! synchronous engine), in pop order. Emission reads engine state but never
//! writes it: no RNG draw, no float accumulation, no queue push happens on
//! behalf of tracing, so a run with any combination of sinks attached is
//! bit-identical to the untraced run (`tests/trace_determinism.rs` enforces
//! this under faults + repair + staleness at 1/2/8 threads).
//!
//! Wall-clock timings are the one unavoidable nondeterminism: they live in
//! the dedicated fields of [`TraceEvent::ExecuteBatch`] (a side channel
//! excluded from every bit-equality check) and can be stripped with
//! [`TraceEvent::canonical`], after which a trace is itself invariant under
//! the worker-thread count.
//!
//! # Sinks
//!
//! - [`JsonlWriter`] — one JSON object per line, the archival format
//!   consumed by the `trace_report` bin;
//! - [`MemorySink`] — a cloneable in-memory collector for tests and
//!   controllers;
//! - [`FlightRecorder`] — a byte-bounded ring that is cheap enough to leave
//!   always-on; the [`Tracer`] keeps one internally and dumps its tail on
//!   panic or protocol violation;
//! - [`ChromeTraceWriter`] — a Chrome trace-event (Perfetto-loadable) JSON
//!   export of the propose/execute/commit spans.

#![warn(missing_docs)]

mod chrome;
mod event;
pub mod replay;
mod sink;
mod tracer;

pub use chrome::ChromeTraceWriter;
pub use event::{AttackKind, BatchClass, KillReason, TraceEvent};
pub use replay::{read_jsonl, ParsedTrace};
pub use sink::{FlightRecorder, JsonlWriter, MemorySink, TraceSink};
pub use tracer::{FlightDumpGuard, TraceConfig, Tracer, DEFAULT_FLIGHT_RECORDER_BYTES};
