//! Umbrella crate for the JWINS reproduction: re-exports every sub-crate so the
//! examples and integration tests can use a single dependency.
pub use jwins as core;
pub use jwins_codec as codec;
pub use jwins_data as data;
pub use jwins_fault as fault;
pub use jwins_fourier as fourier;
pub use jwins_metrics as metrics;
pub use jwins_net as net;
pub use jwins_nn as nn;
pub use jwins_sim as sim;
pub use jwins_topology as topology;
pub use jwins_trace as trace;
pub use jwins_wavelet as wavelet;

/// Whether `JWINS_SMOKE=1` requests the CI-sized reduced configuration —
/// the examples-smoke job runs every example with this set so each one
/// executes end to end in seconds. Delegates to the single definition of
/// the smoke contract in [`jwins::smoke`].
pub use jwins::smoke;
