//! Umbrella crate for the JWINS reproduction: re-exports every sub-crate so the
//! examples and integration tests can use a single dependency.
pub use jwins as core;
pub use jwins_codec as codec;
pub use jwins_data as data;
pub use jwins_fault as fault;
pub use jwins_fourier as fourier;
pub use jwins_net as net;
pub use jwins_nn as nn;
pub use jwins_sim as sim;
pub use jwins_topology as topology;
pub use jwins_wavelet as wavelet;
