//! Offline shim for `rand_distr`: the [`Normal`] and [`Uniform`]
//! distributions over the [`Distribution`] trait re-exported from the
//! vendored `rand`.

pub use rand::distributions::{Distribution, Standard};

use rand::{RngCore, SampleUniform};

/// Error building a normal distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was not finite.
    MeanTooSmall,
    /// The standard deviation was negative or not finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "normal mean must be finite"),
            NormalError::BadVariance => write!(f, "normal std dev must be finite and >= 0"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std^2)`, sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev^2)`.
    ///
    /// # Errors
    ///
    /// Fails if `mean` is not finite or `std_dev` is negative/not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller, one variate per call (the sine twin is discarded so
        // sampling stays a pure stream function).
        let u1 = ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let u2 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The uniform distribution over a range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Self {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Self {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(rng, self.lo, self.hi)
        } else {
            T::sample_half_open(rng, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments() {
        let dist = Normal::new(2.0, 3.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let dist = Uniform::new_inclusive(-0.5f64, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&v));
        }
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
