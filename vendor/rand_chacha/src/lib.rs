//! Offline shim for `rand_chacha`: a real ChaCha8 block generator behind the
//! upstream type name. Not bit-compatible with the crates.io stream (word
//! extraction order differs), but cryptographically-grade deterministic,
//! which is what the seeded experiments need.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_ROUNDS: usize = 8;

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let (counter, carry) = self.state[12].overflowing_add(1);
        self.state[12] = counter;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter = 0, nonce = 0.
        let mut rng = Self {
            state,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
