//! Offline shim for the `bytes` crate: a cheaply-cloneable, immutable,
//! reference-counted byte buffer. Cloning shares the allocation, which is
//! what the network layer relies on for broadcast fan-out.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A sub-buffer of `range` (copies the range).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }

    /// The bytes as a vector (copies).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self {
            data: v.as_bytes().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn empty_and_slice() {
        assert!(Bytes::new().is_empty());
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a.slice(1..3)[..], &[2, 3]);
    }
}
