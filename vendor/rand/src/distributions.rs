//! Distribution trait and the `Standard` distribution.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution of each primitive type: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
