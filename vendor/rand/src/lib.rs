//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: the [`RngCore`],
//! [`SeedableRng`] and [`Rng`] traits, uniform range sampling, slice
//! shuffling and index sampling. Generators are *not* bit-compatible with
//! upstream `rand` — determinism is guaranteed only within this workspace,
//! which is all the experiments require (every run is a pure function of its
//! seed under *some* fixed PRNG).

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core of every generator: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping (bias < 2^-64, fine
                // for simulation workloads).
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                // Compute in f64 so the f32 path doesn't round a 53-bit
                // integer up to 2^53 (unit == 1.0); even then, the final
                // rounding (f64 product, or the cast back to f32) can land
                // exactly on `hi`, so clamp to the largest value below it
                // to honour the half-open contract.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                if v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v.max(lo)
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                v.clamp(lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value of `T` drawn from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    /// Regression: the f32 path used to build `unit` from a 53-bit integer
    /// cast to f32, which rounds up to 1.0 with probability ~2^-25 and
    /// returned the excluded endpoint `hi`.
    #[test]
    fn half_open_floats_exclude_the_endpoint() {
        // An rng pinned at the maximum word forces unit to its largest
        // value — the worst case for endpoint leakage.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v32: f32 = MaxRng.gen_range(0.0f32..1.0);
        assert!(v32 < 1.0, "f32 endpoint leaked: {v32}");
        let v64: f64 = MaxRng.gen_range(0.0f64..1.0);
        assert!(v64 < 1.0, "f64 endpoint leaked: {v64}");
        let narrow: f32 = MaxRng.gen_range(1.0f32..1.0000001);
        assert!(narrow < 1.0000001, "narrow-range endpoint leaked: {narrow}");
    }
}
