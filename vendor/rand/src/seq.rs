//! Sequence helpers: shuffling, choosing and index sampling.

use crate::{Rng, RngCore};

/// Shuffle/choose extension methods on slices, mirroring
/// `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in selection order (all of them when the
    /// slice is shorter).
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let picked = index::sample(rng, self.len(), amount.min(self.len()));
        picked
            .into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// Index sampling without replacement.
pub mod index {
    use crate::{Rng, RngCore};

    /// A set of sampled indices.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length` uniformly, in
    /// selection order (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} from {length}");
        let mut pool: Vec<usize> = (0..length).collect();
        let mut out = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
            out.push(pool[i]);
        }
        IndexVec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut Lcg::seed_from_u64(1));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = Lcg::seed_from_u64(2);
        let idx = index::sample(&mut rng, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }
}
