//! Offline shim for `criterion`: a minimal wall-clock microbenchmark harness
//! with the upstream surface this repository's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `BenchmarkId`,
//! [`black_box`]). It runs each closure for a fixed sample budget and prints
//! median per-iteration time — no statistics engine, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

/// Times one closure, returning per-iteration nanoseconds over `samples`
/// timed samples (median).
fn time_samples(samples: usize, mut routine: impl FnMut()) -> f64 {
    // Warm-up + calibration: find an iteration count giving >= ~1ms samples.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                routine();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

fn print_result(name: &str, nanos: f64) {
    let (value, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    };
    println!("{name:<50} {value:>10.3} {unit}/iter");
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Benchmarks a closure with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        nanos: None,
        sample_size,
    };
    f(&mut bencher);
    if let Some(nanos) = bencher.nanos {
        print_result(name, nanos);
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    nanos: Option<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let nanos = time_samples(self.sample_size, || {
            black_box(routine());
        });
        self.nanos = Some(nanos);
    }
}

/// A benchmark identifier carrying a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Only a parameter label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
