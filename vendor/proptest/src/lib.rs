//! Offline shim for `proptest`.
//!
//! Supports the subset this repository's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` header),
//! [`any`], range strategies, tuple strategies, `collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test seed; there is **no shrinking** — a failing case
//! panics with the sampled inputs' debug representation.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// A uniform choice between strategies producing the same value type —
/// the engine behind [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct OneOf<T>(pub T);

macro_rules! impl_oneof_strategy {
    ($(($n:literal; $($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<V: std::fmt::Debug, $($name: Strategy<Value = V>),+> Strategy for OneOf<($($name,)+)> {
            type Value = V;
            fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> V {
                match rng.next_u64() % $n {
                    $($idx => self.0.$idx.sample_value(rng),)+
                    _ => unreachable!(),
                }
            }
        }
    )+};
}

impl_oneof_strategy!(
    (2u64; A: 0, B: 1),
    (3u64; A: 0, B: 1, C: 2),
    (4u64; A: 0, B: 1, C: 2, D: 3),
    (5u64; A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Chooses uniformly between the given strategies (the upstream macro's
/// unweighted form; all arms must generate the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(($($strategy,)+))
    };
}

/// The full/natural distribution of a primitive type — `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the `any` strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // Mix of ordinary magnitudes and raw bit patterns (subnormals,
        // infinities, NaNs), mirroring proptest's special-value bias.
        match rng.next_u64() % 8 {
            0 => f32::from_bits(rng.next_u32()),
            1 => 0.0,
            2 => -0.0,
            _ => {
                let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
                let scale = 10f32.powi((rng.next_u64() % 21) as i32 - 10);
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * unit * scale
            }
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        match rng.next_u64() % 8 {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            2 => -0.0,
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let scale = 10f64.powi((rng.next_u64() % 41) as i32 - 20);
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * unit * scale
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample_value<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::{Rng, RngCore};

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Runs `body` over `cases` sampled inputs — the engine behind [`proptest!`].
pub fn run_cases<F: FnMut(&mut ChaCha8Rng)>(config: &ProptestConfig, test_name: &str, mut body: F) {
    // Deterministic per-test stream: FNV-1a over the test path.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..config.cases {
        body(&mut rng);
    }
}

/// The prelude mirrored from upstream proptest.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests (see crate docs for the supported subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                    $(let $pat = $crate::Strategy::sample_value(&$strat, __rng);)*
                    $body
                });
            }
        )*
    };
}

/// Asserts a property (panics with context on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, v in collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0u8..10, 0u8..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|v| v * 2),
            Just(3u32),
        ]) {
            prop_assert!(x == 1 || x == 3 || (20..40).contains(&x));
        }
    }
}
