//! Offline shim for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over `std::sync`. Lock poisoning is converted into the inner
//! guard (a panicking holder already aborts the test that cares), matching
//! parking_lot's "no poisoning" API shape.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never return `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
