//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` shim's value-tree model without `syn`/`quote` (neither is
//! available offline): the input token stream is walked by hand. Supported
//! shapes — everything this repository derives on:
//!
//! - structs with named fields,
//! - enums with unit, tuple and struct variants (externally tagged),
//! - field attributes `#[serde(skip)]` and `#[serde(default)]`.
//!
//! Generics are intentionally unsupported; deriving on a generic type is a
//! compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{ty}::{n} => ::serde::Value::Str(\"{n}\".to_string()),\n",
                        ty = item.name,
                        n = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{ty}::{n}({pat}) => ::serde::Value::Map(vec![(\"{n}\".to_string(), {inner})]),\n",
                            ty = item.name,
                            n = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pat = names.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{n} {{ {pat} }} => ::serde::Value::Map(vec![(\"{n}\".to_string(), \
                             ::serde::Value::Map(vec![{entries}]))]),\n",
                            ty = item.name,
                            n = v.name,
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        name = item.name
    );
    out.parse().expect("derived Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-tree `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::core::default::Default::default(),\n",
                        n = f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{n}: match ::serde::find_field(map, \"{n}\") {{\n\
                         Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                         None => ::core::default::Default::default(),\n}},\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(::serde::find_field(map, \"{n}\")\
                         .ok_or_else(|| ::serde::Error::missing_field(\"{n}\", \"{ty}\"))?)?,\n",
                        n = f.name,
                        ty = name
                    ));
                }
            }
            format!(
                "let map = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
                 if seq.len() != {arity} {{ return Err(::serde::Error::custom(format!(\"{name} wants {arity} items, got {{}}\", seq.len()))); }}\n\
                 Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{n}\" => return Ok({name}::{n}),\n", n = v.name)),
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{n}\" => return Ok({name}::{n}(::serde::Deserialize::from_value(inner)?)),\n",
                                n = v.name
                            ));
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{n}\" => {{\n\
                                 let seq = inner.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}::{n}\"))?;\n\
                                 if seq.len() != {arity} {{ return Err(::serde::Error::custom(format!(\"{name}::{n} wants {arity} items, got {{}}\", seq.len()))); }}\n\
                                 return Ok({name}::{n}({elems}));\n}}\n",
                                n = v.name,
                                elems = elems.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{n}: ::core::default::Default::default(),\n",
                                    n = f.name
                                ));
                            } else if f.default {
                                inits.push_str(&format!(
                                    "{n}: match ::serde::find_field(vmap, \"{n}\") {{\n\
                                     Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                     None => ::core::default::Default::default(),\n}},\n",
                                    n = f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: ::serde::Deserialize::from_value(::serde::find_field(vmap, \"{n}\")\
                                     .ok_or_else(|| ::serde::Error::missing_field(\"{n}\", \"{name}::{vn}\"))?)?,\n",
                                    n = f.name,
                                    vn = v.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{n}\" => {{\n\
                             let vmap = inner.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}::{n}\"))?;\n\
                             return Ok({name}::{n} {{\n{inits}}});\n}}\n",
                            n = v.name
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(tag) = v {{\n\
                 match tag.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 return Err(::serde::Error::custom(format!(\"unknown {name} variant `{{tag}}`\")));\n}}\n\
                 if let Some(map) = v.as_map() {{\n\
                 if map.len() == 1 {{\n\
                 let (tag, inner) = &map[0];\n\
                 match tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n\
                 return Err(::serde::Error::custom(format!(\"unknown {name} variant `{{tag}}`\")));\n}}\n}}\n\
                 Err(::serde::Error::expected(\"variant tag\", \"{name}\"))"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        name = item.name
    );
    out.parse().expect("derived Deserialize impl must parse")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<Field>),
    /// Tuple struct with this arity (arity 1 = transparent newtype).
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Flags found in `#[serde(...)]` attributes.
#[derive(Default)]
struct SerdeFlags {
    skip: bool,
    default: bool,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types (deriving on `{name}`)");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break Some(g.stream())
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                // Tuple struct: count comma-separated elements.
                let mut arity = 0usize;
                let mut depth = 0i32;
                let mut saw = false;
                let mut last_comma = false;
                for t in g.stream() {
                    saw = true;
                    last_comma = false;
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            arity += 1;
                            last_comma = true;
                        }
                        _ => {}
                    }
                }
                if saw && !last_comma {
                    arity += 1;
                }
                return Item {
                    name,
                    shape: Shape::Tuple(arity),
                };
            }
            Some(_) => i += 1, // where clauses etc. (unused here)
            None => panic!("serde shim derive: `{name}` has no body"),
        }
    };
    let shape = if kind == "struct" {
        Shape::Struct(parse_fields(body.expect("struct body")))
    } else {
        Shape::Enum(parse_variants(body.expect("enum body")))
    };
    Item { name, shape }
}

/// Parses `#[serde(...)]`-style attributes at `*i`, returning accumulated
/// flags and advancing past every attribute.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeFlags {
    let mut flags = SerdeFlags::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if let TokenTree::Ident(flag) = t {
                                match flag.to_string().as_str() {
                                    "skip" => flags.skip = true,
                                    "default" => flags.default = true,
                                    other => {
                                        panic!("serde shim derive: unsupported #[serde({other})]")
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    flags
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let flags = parse_attrs(&tokens, &mut i);
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(field_name)) = tokens.get(i) else {
            panic!(
                "serde shim derive: expected field name, got {:?}",
                tokens.get(i)
            );
        };
        let name = field_name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _flags = parse_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(variant_name)) = tokens.get(i) else {
            panic!(
                "serde shim derive: expected variant name, got {:?}",
                tokens.get(i)
            );
        };
        let name = variant_name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                // Count comma-separated elements at angle depth 0.
                let mut arity = 0usize;
                let mut depth = 0i32;
                let mut saw_tokens = false;
                for t in g.stream() {
                    saw_tokens = true;
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                        _ => {}
                    }
                }
                if saw_tokens {
                    arity += 1; // n separators => n+1 elements (no trailing comma in variants here)
                }
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}
