//! Offline shim for `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors a
//! compact serialization framework under the `serde` name: a [`Value`] tree,
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (see the sibling `serde_derive` shim, which honours `#[serde(skip)]` and
//! `#[serde(default)]`), and a [`json`] module for a human-readable text
//! round-trip. The API is intentionally *simpler* than real serde — one
//! value model instead of visitor streams — but the derive surface used by
//! this repository is source-compatible.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used when negative).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short tag naming the variant (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a field in a map value (first match; maps are field-ordered).
pub fn find_field<'v>(map: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Self {
        Self {
            message: format!("expected {what} while deserializing {context}"),
        }
    }

    /// A missing-field error.
    pub fn missing_field(field: &str, context: &str) -> Self {
        Self {
            message: format!("missing field `{field}` while deserializing {context}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first structural mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(Error::expected("float", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("pair", v.kind()))?;
        if seq.len() != 2 {
            return Err(Error::custom(format!(
                "expected pair, got {} items",
                seq.len()
            )));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u8::from_value(&Value::Str("no".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }
}
