//! A small JSON text format over the [`crate::Value`] tree — enough
//! for configuration round-trips and human-readable experiment dumps.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    out
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a structural mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's float Display is shortest-round-trip; force a
                // fractional marker so the value re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no inf/NaN; encode as null (never produced by the
                // validated configs this shim serves).
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated utf8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid utf8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[1,2.5,{"b":null}],"c":"x\ny"}"#).unwrap();
        let Value::Map(entries) = &v else { panic!() };
        assert_eq!(entries.len(), 2);
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn float_display_round_trips() {
        let x = 0.1f64 + 0.2;
        let v = Value::F64(x);
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
