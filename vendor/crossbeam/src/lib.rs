//! Offline shim for `crossbeam`: the `thread::scope` API implemented over
//! `std::thread::scope` (available since Rust 1.63), preserving crossbeam's
//! `Result`-returning signature and the `|_| …` spawn-closure shape.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A handle to a scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (crossbeam
        /// convention) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the caller's stack.
    /// Returns `Err` only if the closure's own panic escaped via a spawned
    /// thread that was never joined (std re-panics in that case, so in this
    /// shim the result is always `Ok` unless `f` panics — matching how the
    /// engine uses it: every handle is joined explicitly).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
