//! Offline shim for `crossbeam`: the `thread::scope` API implemented over
//! `std::thread::scope` (available since Rust 1.63), preserving crossbeam's
//! `Result`-returning signature and the `|_| …` spawn-closure shape, plus
//! an `unbounded` MPMC `channel` built on `Mutex<VecDeque>` + `Condvar`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A handle to a scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (crossbeam
        /// convention) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the caller's stack.
    /// Returns `Err` only if the closure's own panic escaped via a spawned
    /// thread that was never joined (std re-panics in that case, so in this
    /// shim the result is always `Ok` unless `f` panics — matching how the
    /// engine uses it: every handle is joined explicitly).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer multi-consumer FIFO channels (the `unbounded` flavour
/// only), implemented over `Mutex<VecDeque>` + `Condvar`. Semantics match
/// upstream crossbeam where the JWINS transport layer relies on them:
/// per-channel FIFO order, `Err` once every peer on the other side is gone,
/// cloneable `Sender`s *and* `Receiver`s.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        readable: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be sent: every `Receiver` was dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a closed channel")
        }
    }

    /// Why `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every `Sender` was dropped.
        Disconnected,
    }

    /// Why `recv_timeout` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed without a message arriving.
        Timeout,
        /// The channel is empty and every `Sender` was dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; `Err(SendError(msg))` once every receiver is
        /// gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking up to `timeout` for a message to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .readable
                    .wait_timeout(state, deadline - now)
                    .expect("channel poisoned");
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_preserves_fifo_order() {
        let (tx, rx) = crate::channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(crate::channel::TryRecvError::Empty));
    }

    #[test]
    fn channel_reports_disconnect_both_ways() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(crate::channel::SendError(1)));

        let (tx, rx) = crate::channel::unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(
            rx.try_recv(),
            Err(crate::channel::TryRecvError::Disconnected)
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(crate::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_blocks_until_a_send_lands() {
        let (tx, rx) = crate::channel::unbounded();
        crate::thread::scope(|scope| {
            scope.spawn(move |_| {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        })
        .unwrap();
    }

    #[test]
    fn recv_timeout_times_out_when_nothing_arrives() {
        let (_tx, rx) = crate::channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(crate::channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cloned_endpoints_share_the_queue() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx2.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        // Dropping one sender clone keeps the channel open.
        drop(tx2);
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
    }
}
